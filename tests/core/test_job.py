"""Unit tests for job specs and runtime job state."""

import pytest

from repro.core import JobPhase, MapReduceJobSpec
from repro.core.job import MapReduceJob
from repro.sim import Simulator


def spec(**kwargs):
    defaults = dict(name="j", n_maps=4, n_reducers=2, input_size=4e6)
    defaults.update(kwargs)
    return MapReduceJobSpec(**defaults)


class TestSpecValidation:
    def test_valid(self):
        assert spec().chunk_size == pytest.approx(1e6)

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            spec(n_maps=0)
        with pytest.raises(ValueError):
            spec(n_reducers=0)

    def test_bad_input_size(self):
        with pytest.raises(ValueError):
            spec(input_size=0)

    def test_replication_quorum(self):
        with pytest.raises(ValueError):
            spec(replication=1, quorum=2)
        with pytest.raises(ValueError):
            spec(quorum=0)

    def test_file_naming_is_consistent(self):
        s = spec()
        assert s.map_input_file(3) == "j_map3_in"
        assert s.map_output_file(3, 1) == "j_m3_r1"
        assert s.reduce_output_file(1) == "j_out1"

    def test_derived_flops_positive(self):
        s = spec()
        assert s.map_flops > 0
        assert s.reduce_flops > 0

    def test_map_output_size(self):
        s = spec()
        assert s.map_output_size() == pytest.approx(
            s.cost.map_output_bytes(s.chunk_size, s.n_reducers))


class TestJobState:
    def make(self):
        sim = Simulator()
        return sim, MapReduceJob(sim, spec())

    def test_initial_phase(self):
        _sim, job = self.make()
        assert job.phase is JobPhase.MAP
        assert not job.finished
        assert job.makespan() is None

    def test_map_phase_completes_after_all_maps(self):
        _sim, job = self.make()
        for i in range(4):
            assert job.phase is JobPhase.MAP
            job.record_map_validated(i, wu_id=i + 1, holders=[f"h{i}"], now=10.0 * i)
        assert job.phase is JobPhase.REDUCE
        assert job.map_phase_done.triggered
        assert job.map_phase_done_at == 30.0

    def test_duplicate_map_rejected(self):
        _sim, job = self.make()
        job.record_map_validated(0, 1, [], 1.0)
        with pytest.raises(ValueError):
            job.record_map_validated(0, 1, [], 2.0)

    def test_job_completes_after_all_reduces(self):
        _sim, job = self.make()
        for i in range(4):
            job.record_map_validated(i, i + 1, [], 1.0)
        job.record_reduce_validated(0, 50.0)
        assert not job.finished
        job.record_reduce_validated(1, 60.0)
        assert job.phase is JobPhase.DONE
        assert job.done.triggered
        assert job.makespan() == 60.0

    def test_duplicate_reduce_rejected(self):
        _sim, job = self.make()
        for i in range(4):
            job.record_map_validated(i, i + 1, [], 1.0)
        job.record_reduce_validated(0, 5.0)
        with pytest.raises(ValueError):
            job.record_reduce_validated(0, 6.0)

    def test_fail_marks_failed_and_fails_event(self):
        sim, job = self.make()
        job.fail("validator gave up")
        assert job.phase is JobPhase.FAILED
        assert job.finished
        with pytest.raises(RuntimeError, match="validator gave up"):
            job.done.value

    def test_fail_after_done_is_noop(self):
        _sim, job = self.make()
        for i in range(4):
            job.record_map_validated(i, i + 1, [], 1.0)
        for r in range(2):
            job.record_reduce_validated(r, 2.0)
        job.fail("too late")
        assert job.phase is JobPhase.DONE

    def test_holders_recorded(self):
        _sim, job = self.make()
        job.record_map_validated(2, 7, ["a", "b"], 1.0)
        assert job.map_tasks[2].holders == ["a", "b"]
        assert job.map_tasks[2].wu_id == 7
