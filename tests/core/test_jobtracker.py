"""Unit tests for the JobTracker server module."""

import pytest

from repro.boinc import ProjectServer, Workunit
from repro.boinc.model import FileRef, OutputData, ResultState, ValidateState
from repro.core import BoincMRConfig, JobPhase, MapReduceJobSpec
from repro.core.jobtracker import JobTracker
from repro.net import Network, SERVER_LINK
from repro.sim import Simulator


@pytest.fixture
def setup():
    sim = Simulator()
    net = Network(sim)
    host = net.add_host("server", SERVER_LINK)
    server = ProjectServer(sim, net, host)
    tracker = JobTracker(sim, server, config=BoincMRConfig(
        upload_map_outputs=True))
    return sim, server, tracker


def spec(**kwargs):
    defaults = dict(name="j", n_maps=3, n_reducers=2, input_size=3e6)
    defaults.update(kwargs)
    return MapReduceJobSpec(**defaults)


def force_validate(server, wu, host_names, supports_mr=True):
    """Manually drive a WU to assimilation via given hosts."""
    for name in host_names:
        rec = next((h for h in server.db.hosts.values() if h.name == name),
                   None)
        if rec is None:
            rec = server.register_host(name, 1.0, supports_mr=supports_mr)
    results = server.db.results_for_wu(wu.id)
    for res, name in zip(results, host_names):
        rec = next(h for h in server.db.hosts.values() if h.name == name)
        server.db.mark_sent(res, rec, server.sim.now, 1e9)
        res.state = ResultState.OVER
        from repro.boinc.model import ResultOutcome
        res.outcome = ResultOutcome.SUCCESS
        res.output = OutputData(digest=f"wu{wu.id}")
        res.reported_at = server.sim.now
    server._dirty_wus.add(wu.id)
    server._transitioner_pass()
    server._validator_pass()
    server._assimilator_pass()


class TestSubmission:
    def test_creates_map_wus_with_tags(self, setup):
        _sim, server, tracker = setup
        job = tracker.submit(spec())
        maps = server.db.workunits_by_job("j", "map")
        assert len(maps) == 3
        assert {wu.mr_index for wu in maps} == {0, 1, 2}
        assert all(wu.target_nresults == 2 for wu in maps)

    def test_map_inputs_published(self, setup):
        _sim, server, tracker = setup
        tracker.submit(spec())
        assert server.dataserver.has("j_map0_in")
        assert server.dataserver.files["j_map0_in"].size == pytest.approx(1e6)

    def test_duplicate_name_rejected(self, setup):
        _sim, _server, tracker = setup
        tracker.submit(spec())
        with pytest.raises(ValueError):
            tracker.submit(spec())


class TestPhaseTransition:
    def test_reduce_wus_created_after_all_maps(self, setup):
        _sim, server, tracker = setup
        job = tracker.submit(spec())
        maps = server.db.workunits_by_job("j", "map")
        for wu in maps[:-1]:
            force_validate(server, wu, [f"h{wu.mr_index}a", f"h{wu.mr_index}b"])
            assert server.db.workunits_by_job("j", "reduce") == []
        force_validate(server, maps[-1], ["hza", "hzb"])
        reduces = server.db.workunits_by_job("j", "reduce")
        assert len(reduces) == 2
        assert job.phase is JobPhase.REDUCE

    def test_reduce_inputs_not_published(self, setup):
        _sim, server, tracker = setup
        tracker.submit(spec())
        for wu in server.db.workunits_by_job("j", "map"):
            force_validate(server, wu, [f"h{wu.mr_index}a", f"h{wu.mr_index}b"])
        # Reduce input files exist as references only, not on the server.
        assert not server.dataserver.has("j_m0_r0")

    def test_reduce_wu_geometry(self, setup):
        _sim, server, tracker = setup
        job = tracker.submit(spec())
        for wu in server.db.workunits_by_job("j", "map"):
            force_validate(server, wu, [f"h{wu.mr_index}a", f"h{wu.mr_index}b"])
        reduces = server.db.workunits_by_job("j", "reduce")
        # Each reduce WU has one input per mapper.
        assert all(len(wu.input_files) == 3 for wu in reduces)

    def test_holders_are_mr_hosts_only(self, setup):
        _sim, server, tracker = setup
        job = tracker.submit(spec())
        wu = server.db.workunits_by_job("j", "map")[0]
        # one MR host, one legacy host
        server.register_host("mr_host", 1.0, supports_mr=True)
        server.register_host("old_host", 1.0, supports_mr=False)
        force_validate(server, wu, ["mr_host", "old_host"])
        assert job.map_tasks[wu.mr_index].holders == ["mr_host"]

    def test_job_done_event(self, setup):
        _sim, server, tracker = setup
        job = tracker.submit(spec())
        for wu in server.db.workunits_by_job("j", "map"):
            force_validate(server, wu, [f"h{wu.mr_index}a", f"h{wu.mr_index}b"])
        for wu in server.db.workunits_by_job("j", "reduce"):
            force_validate(server, wu, [f"r{wu.mr_index}a", f"r{wu.mr_index}b"])
        assert job.phase is JobPhase.DONE
        assert job.done.triggered


class TestLocateReduceInputs:
    def prepared(self, setup):
        _sim, server, tracker = setup
        job = tracker.submit(spec())
        for wu in server.db.workunits_by_job("j", "map"):
            force_validate(server, wu, [f"h{wu.mr_index}a", f"h{wu.mr_index}b"])
        reduce_wu = server.db.workunits_by_job("j", "reduce")[0]
        return server, tracker, job, reduce_wu

    def test_mr_host_gets_locations(self, setup):
        server, tracker, _job, reduce_wu = self.prepared(setup)
        mr_host = server.register_host("asker", 1.0, supports_mr=True)
        locs = tracker.locate_reduce_inputs(reduce_wu, mr_host)
        assert set(locs) == {0, 1, 2}
        assert locs[0] == ["h0a", "h0b"]

    def test_legacy_host_gets_nothing(self, setup):
        server, tracker, _job, reduce_wu = self.prepared(setup)
        legacy = server.register_host("old", 1.0, supports_mr=False)
        assert tracker.locate_reduce_inputs(reduce_wu, legacy) == {}

    def test_peers_disabled_gets_nothing(self, setup):
        server, tracker, _job, reduce_wu = self.prepared(setup)
        tracker.config.reduce_from_peers = False
        mr_host = server.register_host("asker", 1.0, supports_mr=True)
        assert tracker.locate_reduce_inputs(reduce_wu, mr_host) == {}

    def test_unknown_job_gets_nothing(self, setup):
        server, tracker, _job, _reduce_wu = self.prepared(setup)
        alien = Workunit(id=server.db.new_wu_id(), app_name="x",
                         input_files=(), flops=1.0, mr_job="ghost",
                         mr_kind="reduce", mr_index=0)
        mr_host = server.register_host("asker", 1.0, supports_mr=True)
        assert tracker.locate_reduce_inputs(alien, mr_host) == {}


class TestEarlyReduceCreation:
    def test_threshold_creates_early(self, setup):
        sim, server, _old = setup
        # fresh tracker with fraction 0.5 over 4 maps -> create at 2
        tracker = JobTracker(sim, server, config=BoincMRConfig(
            upload_map_outputs=True, reduce_creation_fraction=0.5))
        job = tracker.submit(spec(name="early", n_maps=4))
        maps = server.db.workunits_by_job("early", "map")
        force_validate(server, maps[0], ["a0", "b0"])
        assert server.db.workunits_by_job("early", "reduce") == []
        force_validate(server, maps[1], ["a1", "b1"])
        assert len(server.db.workunits_by_job("early", "reduce")) == 2
        assert job.phase is JobPhase.MAP  # maps still outstanding


class TestWuErrorPropagation:
    def test_map_wu_error_fails_job(self, setup):
        _sim, server, tracker = setup
        job = tracker.submit(spec())
        wu = server.db.workunits_by_job("j", "map")[0]
        # simulate the transitioner calling the hook
        wu.error_reason = "too many errors"
        tracker._on_wu_error(wu)
        assert job.phase is JobPhase.FAILED
        with pytest.raises(RuntimeError, match="map workunit 0"):
            job.done.value
