"""Workflow failure propagation and multi-seed Table I stability."""

import statistics

import pytest

from repro.core import (
    BoincMRConfig,
    VolunteerCloud,
    WorkflowStage,
    pipeline,
)


class TestWorkflowFailure:
    def test_failed_stage_fails_workflow(self):
        # Every execution crashes: each map workunit exhausts its error
        # budget, the transitioner abandons it, and the JobTracker fails
        # the job — which must fail the workflow at stage 0.
        class Exploding:
            def execute(self, client, task):
                raise RuntimeError("bad binary")

        cloud = VolunteerCloud(seed=1, mr_config=BoincMRConfig())
        for client in cloud.add_volunteers(6, mr=True):
            client.executor = Exploding()
        wf = pipeline(cloud, "doomed", 60e6,
                      WorkflowStage("a", n_maps=6, n_reducers=2),
                      WorkflowStage("never_runs", n_maps=3, n_reducers=1))
        with pytest.raises(RuntimeError, match="failed at stage"):
            wf.run(timeout=48 * 3600)
        assert not wf.done.ok
        # Stage 0 was submitted, stage 1 never was.
        assert len(wf.jobs) == 1
        assert "never_runs" not in {
            wu.mr_job for wu in cloud.server.db.workunits.values()
            if wu.mr_job is not None
        } - {"doomed.a"}

    def test_makespan_none_until_finished(self):
        cloud = VolunteerCloud(seed=1)
        cloud.add_volunteers(6, mr=True)
        wf = pipeline(cloud, "pending", 30e6,
                      WorkflowStage("a", n_maps=3, n_reducers=1))
        assert wf.makespan() is None
        wf.run()
        assert wf.makespan() is not None


class TestTable1Stability:
    """The relational claims must hold across seeds, not just seed 1."""

    @pytest.fixture(scope="class")
    def seeds_metrics(self):
        from repro.experiments import Scenario, run_scenario

        out = []
        for seed in (1, 2, 3):
            vanilla = run_scenario(Scenario(
                name="stab_v", n_nodes=20, n_maps=20, n_reducers=5,
                mr_clients=False, seed=seed))
            mr = run_scenario(Scenario(
                name="stab_m", n_nodes=20, n_maps=20, n_reducers=5,
                mr_clients=True, seed=seed))
            out.append((vanilla.metrics, mr.metrics))
        return out

    def test_mr_reduce_faster_every_seed(self, seeds_metrics):
        for vanilla, mr in seeds_metrics:
            assert mr.reduce_stats.mean < vanilla.reduce_stats.mean

    def test_totals_comparable_every_seed(self, seeds_metrics):
        for vanilla, mr in seeds_metrics:
            assert 0.5 < mr.total / vanilla.total < 1.3

    def test_totals_in_band_with_low_dispersion(self, seeds_metrics):
        totals = [v.total for v, _m in seeds_metrics]
        assert all(700 < t < 2000 for t in totals)
        spread = statistics.pstdev(totals) / statistics.fmean(totals)
        assert spread < 0.35  # noisy, but not wild
