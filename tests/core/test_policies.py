"""Unit-level tests for the BOINC-MR client strategies."""

import pytest

from repro.boinc.client import ClientTask
from repro.boinc.model import FileRef, OutputData, Workunit
from repro.boinc.server import Assignment
from repro.core import BoincMRConfig, MapReduceJobSpec, VolunteerCloud
from repro.core.policies import ClientDirectory
from repro.net import TransferFailed


class TestClientDirectory:
    def test_resolve_with_port(self):
        cloud = VolunteerCloud(seed=1)
        client = cloud.add_volunteer("alpha", mr=True)
        assert cloud.directory.resolve("alpha:31416") is client
        assert cloud.directory.resolve("alpha") is client

    def test_resolve_unknown(self):
        assert ClientDirectory().resolve("ghost:1") is None

    def test_len(self):
        cloud = VolunteerCloud(seed=1)
        cloud.add_volunteers(3, mr=True)
        assert len(cloud.directory) == 3


def harness(mr_config=None, n=3):
    cloud = VolunteerCloud(seed=1, mr_config=mr_config)
    clients = cloud.add_volunteers(n, mr=True)
    spec = MapReduceJobSpec("j", n_maps=2, n_reducers=2, input_size=2e6)
    job = cloud.jobtracker.submit(spec)
    return cloud, clients, spec, job


def make_reduce_task(cloud, spec, reduce_index, peer_locations):
    wu = Workunit(
        id=cloud.server.db.new_wu_id(), app_name="r",
        input_files=tuple(
            FileRef(spec.map_output_file(i, reduce_index),
                    spec.map_output_size())
            for i in range(spec.n_maps)),
        flops=1.0, mr_job=spec.name, mr_kind="reduce",
        mr_index=reduce_index)
    assignment = Assignment(result_id=999, wu=wu, est_runtime_s=1.0,
                            deadline=1e9, peer_locations=peer_locations)
    return ClientTask(assignment=assignment)


def make_map_task(cloud, spec, map_index, result_id=998):
    wu = Workunit(
        id=cloud.server.db.new_wu_id(), app_name="m",
        input_files=(FileRef(spec.map_input_file(map_index),
                             spec.chunk_size),),
        flops=1.0, mr_job=spec.name, mr_kind="map", mr_index=map_index)
    assignment = Assignment(result_id=result_id, wu=wu, est_runtime_s=1.0,
                            deadline=1e9)
    task = ClientTask(assignment=assignment)
    task.output = OutputData(
        digest="d",
        files=tuple(FileRef(spec.map_output_file(map_index, r),
                            spec.map_output_size())
                    for r in range(spec.n_reducers)))
    return task


class TestOutputPolicy:
    def test_mr_map_serves_without_upload(self):
        cloud, clients, spec, _job = harness()  # hash-only default
        task = make_map_task(cloud, spec, 0)
        proc = cloud.sim.process(
            clients[0].output_policy.handle(clients[0], task))
        cloud.sim.run(until_event=proc)
        for r in range(spec.n_reducers):
            assert clients[0].peer_store.available(spec.map_output_file(0, r))
            assert not cloud.server.dataserver.has(spec.map_output_file(0, r))

    def test_mr_map_uploads_when_configured(self):
        cloud, clients, spec, _job = harness(
            BoincMRConfig(upload_map_outputs=True))
        task = make_map_task(cloud, spec, 0)
        proc = cloud.sim.process(
            clients[0].output_policy.handle(clients[0], task))
        cloud.sim.run(until_event=proc)
        cloud.sim.run(until=cloud.sim.now + 60)  # let uploads land
        assert clients[0].peer_store.available(spec.map_output_file(0, 0))
        assert cloud.server.dataserver.has(spec.map_output_file(0, 0))

    def test_missing_peer_store_raises(self):
        cloud, clients, spec, _job = harness()
        task = make_map_task(cloud, spec, 0)
        del clients[0].peer_store

        def body():
            try:
                yield from clients[0].output_policy.handle(clients[0], task)
            except RuntimeError as exc:
                return str(exc)

        proc = cloud.sim.process(body())
        cloud.sim.run(until_event=proc)
        assert "no peer store" in proc.value


class TestInputFetcher:
    def serve_all(self, cloud, clients, spec):
        """Make client[0] serve every map partition."""
        for i in range(spec.n_maps):
            for r in range(spec.n_reducers):
                clients[0].peer_store.serve(
                    FileRef(spec.map_output_file(i, r),
                            spec.map_output_size()), job=spec.name)

    def test_peer_fetch_happy_path(self):
        cloud, clients, spec, _job = harness()
        self.serve_all(cloud, clients, spec)
        locations = {i: [clients[0].record.address]
                     for i in range(spec.n_maps)}
        task = make_reduce_task(cloud, spec, 0, locations)
        fetcher = clients[1].input_fetcher
        proc = cloud.sim.process(fetcher.fetch(clients[1], task))
        cloud.sim.run(until_event=proc)
        assert proc.ok
        assert fetcher.peer_fetches == spec.n_maps

    def test_local_partitions_read_without_transfer(self):
        cloud, clients, spec, _job = harness()
        self.serve_all(cloud, clients, spec)
        locations = {i: [clients[0].record.address]
                     for i in range(spec.n_maps)}
        task = make_reduce_task(cloud, spec, 0, locations)
        fetcher = clients[0].input_fetcher  # the mapper reduces its own data
        proc = cloud.sim.process(fetcher.fetch(clients[0], task))
        cloud.sim.run(until_event=proc)
        assert proc.ok
        assert fetcher.peer_fetches == 0
        assert len(cloud.tracer.select("peer.local")) == spec.n_maps

    def test_unavailable_peer_falls_back_to_server(self):
        cloud, clients, spec, _job = harness(
            BoincMRConfig(upload_map_outputs=True))
        # Nothing served, but the server holds the partitions.
        for i in range(spec.n_maps):
            cloud.server.dataserver.publish(
                FileRef(spec.map_output_file(i, 0), spec.map_output_size()))
        locations = {i: [clients[0].record.address]
                     for i in range(spec.n_maps)}
        task = make_reduce_task(cloud, spec, 0, locations)
        fetcher = clients[1].input_fetcher
        proc = cloud.sim.process(fetcher.fetch(clients[1], task))
        cloud.sim.run(until_event=proc)
        assert proc.ok
        assert fetcher.server_fallbacks == spec.n_maps
        assert len(cloud.tracer.select("peer.unavailable")) > 0

    def test_expired_serving_window_counts_as_unavailable(self):
        cloud, clients, spec, _job = harness(
            BoincMRConfig(upload_map_outputs=True, serve_timeout_s=10.0))
        self.serve_all(cloud, clients, spec)
        for i in range(spec.n_maps):
            cloud.server.dataserver.publish(
                FileRef(spec.map_output_file(i, 0), spec.map_output_size()))
        cloud.sim.schedule(100.0, lambda: None)
        cloud.sim.run()  # run past the serving timeout
        locations = {i: [clients[0].record.address]
                     for i in range(spec.n_maps)}
        task = make_reduce_task(cloud, spec, 0, locations)
        fetcher = clients[1].input_fetcher
        proc = cloud.sim.process(fetcher.fetch(clients[1], task))
        cloud.sim.run(until_event=proc)
        assert proc.ok
        assert fetcher.peer_fetches == 0
        assert fetcher.server_fallbacks == spec.n_maps

    def test_no_peers_no_server_copy_fails(self):
        cloud, clients, spec, _job = harness()  # hash-only: no server copy
        task = make_reduce_task(cloud, spec, 0, {0: ["ghost:1"]})

        def body():
            try:
                yield from clients[1].input_fetcher.fetch(clients[1], task)
            except TransferFailed as exc:
                return f"failed: {exc}"

        proc = cloud.sim.process(body())
        cloud.sim.run(until_event=proc)
        assert "unavailable" in proc.value

    def test_map_task_fetches_from_server(self):
        cloud, clients, spec, _job = harness()
        wu = Workunit(
            id=cloud.server.db.new_wu_id(), app_name="m",
            input_files=(FileRef(spec.map_input_file(0), spec.chunk_size),),
            flops=1.0, mr_job=spec.name, mr_kind="map", mr_index=0)
        task = ClientTask(assignment=Assignment(
            result_id=1000, wu=wu, est_runtime_s=1.0, deadline=1e9))
        proc = cloud.sim.process(
            clients[1].input_fetcher.fetch(clients[1], task))
        cloud.sim.run(until_event=proc)
        assert proc.ok
