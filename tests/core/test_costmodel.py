"""Unit tests for MapReduce cost models."""

import pytest

from repro.core import GREP, INVERTED_INDEX, WORD_COUNT, MapReduceCostModel


class TestValidation:
    def test_nonpositive_throughput_rejected(self):
        with pytest.raises(ValueError):
            MapReduceCostModel(0, 1, 1, 1)
        with pytest.raises(ValueError):
            MapReduceCostModel(1, -1, 1, 1)

    def test_negative_ratio_rejected(self):
        with pytest.raises(ValueError):
            MapReduceCostModel(1, 1, -0.1, 1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            WORD_COUNT.map_throughput = 1.0


class TestQuantities:
    def test_map_flops_linear_in_chunk(self):
        assert WORD_COUNT.map_flops(2e6) == pytest.approx(
            2 * WORD_COUNT.map_flops(1e6))

    def test_map_output_split_over_reducers(self):
        per = WORD_COUNT.map_output_bytes(100e6, 5)
        assert per == pytest.approx(100e6 * WORD_COUNT.intermediate_ratio / 5)

    def test_reduce_input_is_all_partitions(self):
        total = WORD_COUNT.reduce_input_bytes(50e6, n_maps=20, n_reducers=5)
        assert total == pytest.approx(
            20 * WORD_COUNT.map_output_bytes(50e6, 5))

    def test_reduce_input_conserves_intermediate_volume(self):
        # Sum over reducers of reduce input == total intermediate data.
        chunk, n_maps, n_red = 50e6, 20, 5
        per_reducer = WORD_COUNT.reduce_input_bytes(chunk, n_maps, n_red)
        total_intermediate = chunk * n_maps * WORD_COUNT.intermediate_ratio
        assert per_reducer * n_red == pytest.approx(total_intermediate)

    def test_reduce_flops(self):
        flops = WORD_COUNT.reduce_flops(50e6, 20, 5)
        assert flops == pytest.approx(
            WORD_COUNT.reduce_input_bytes(50e6, 20, 5)
            / WORD_COUNT.reduce_throughput)

    def test_invalid_reducer_count(self):
        with pytest.raises(ValueError):
            WORD_COUNT.map_output_bytes(1e6, 0)


class TestProfiles:
    def test_grep_is_map_light_and_small_intermediate(self):
        assert GREP.map_throughput > WORD_COUNT.map_throughput
        assert GREP.intermediate_ratio < WORD_COUNT.intermediate_ratio

    def test_inverted_index_is_heaviest(self):
        assert INVERTED_INDEX.map_throughput < WORD_COUNT.map_throughput
        assert INVERTED_INDEX.intermediate_ratio > WORD_COUNT.intermediate_ratio

    def test_wordcount_paper_geometry(self):
        # 1 GB / 20 maps = 50 MB chunks; 5 reducers -> 200 MB per reducer.
        assert WORD_COUNT.reduce_input_bytes(50e6, 20, 5) == pytest.approx(200e6)
