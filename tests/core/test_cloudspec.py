"""CloudSpec construction API and the legacy keyword shim."""

import dataclasses
import warnings

import pytest

from repro.boinc.client import ClientConfig
from repro.core import BoincMRConfig, CloudSpec, VolunteerCloud
from repro.net import EMULAB_LINK, SERVER_LINK
from repro.net.flows import FullAllocator, IncrementalAllocator


class TestCloudSpec:
    def test_defaults(self):
        spec = CloudSpec()
        assert spec.seed == 0
        assert spec.server_link is EMULAB_LINK
        assert spec.allocator == "incremental"

    def test_frozen(self):
        spec = CloudSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.seed = 3

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            CloudSpec(seed=-1)

    def test_replace(self):
        spec = CloudSpec(seed=4)
        other = spec.replace(allocator="full", server_link=SERVER_LINK)
        assert other.seed == 4
        assert other.allocator == "full"
        assert other.server_link is SERVER_LINK
        assert spec.allocator == "incremental"  # original untouched


class TestFromSpec:
    def test_builds_cloud(self):
        cloud = VolunteerCloud.from_spec(CloudSpec(seed=7))
        assert cloud.spec.seed == 7
        assert isinstance(cloud.net.flownet.allocator, IncrementalAllocator)

    def test_allocator_flows_through(self):
        cloud = VolunteerCloud.from_spec(CloudSpec(allocator="full"))
        assert isinstance(cloud.net.flownet.allocator, FullAllocator)

    def test_server_link_flows_through(self):
        cloud = VolunteerCloud.from_spec(CloudSpec(server_link=SERVER_LINK))
        assert cloud.server_host.uplink.capacity == pytest.approx(
            SERVER_LINK.up_bps / 8.0)

    def test_positional_int_is_seed(self):
        with pytest.warns(DeprecationWarning):
            cloud = VolunteerCloud(5)
        assert cloud.spec.seed == 5

    def test_no_warning_from_spec_path(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            VolunteerCloud.from_spec(CloudSpec(seed=1))
            VolunteerCloud(CloudSpec(seed=1))


class TestLegacyShim:
    def test_keyword_form_warns_and_delegates(self):
        mr = BoincMRConfig()
        with pytest.warns(DeprecationWarning, match="CloudSpec"):
            cloud = VolunteerCloud(seed=9, mr_config=mr)
        assert cloud.spec.seed == 9
        assert cloud.spec.mr_config is mr

    def test_equivalent_to_from_spec(self):
        cc = ClientConfig(backoff_max_s=120.0)
        with pytest.warns(DeprecationWarning):
            legacy = VolunteerCloud(seed=3, client_config=cc)
        modern = VolunteerCloud.from_spec(CloudSpec(seed=3, client_config=cc))
        assert legacy.spec == modern.spec

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError):
            VolunteerCloud(seed=1, flux_capacitor=True)

    def test_spec_and_kwargs_rejected(self):
        with pytest.raises(TypeError):
            VolunteerCloud(CloudSpec(seed=1), seed=2)
