"""Integration tests: full BOINC-MR deployments end to end."""

import pytest

from repro.boinc import ClientConfig
from repro.boinc.model import WorkunitState
from repro.core import (
    BoincMRConfig,
    JobPhase,
    MapReduceJobSpec,
    VolunteerCloud,
)
from repro.net import NatBox, NatType
from repro.sim import SimulationError

# Small, fast job geometry used throughout (input scaled down 100x).
SMALL = dict(n_maps=6, n_reducers=2, input_size=60e6)


def small_spec(name="job", **kwargs):
    params = dict(SMALL)
    params.update(kwargs)
    return MapReduceJobSpec(name, **params)


def mr_cloud(seed=1, n=8, mr_config=None, **volunteer_kwargs):
    cloud = VolunteerCloud(seed=seed, mr_config=mr_config)
    cloud.add_volunteers(n, mr=True, **volunteer_kwargs)
    return cloud


def legacy_cloud(seed=1, n=8, **volunteer_kwargs):
    cloud = VolunteerCloud(
        seed=seed,
        mr_config=BoincMRConfig(upload_map_outputs=True,
                                reduce_from_peers=False))
    cloud.add_volunteers(n, mr=False, **volunteer_kwargs)
    return cloud


class TestEndToEnd:
    def test_legacy_boinc_completes(self):
        cloud = legacy_cloud()
        job = cloud.run_job(small_spec())
        assert job.phase is JobPhase.DONE
        assert job.makespan() > 0

    def test_boinc_mr_completes(self):
        cloud = mr_cloud()
        job = cloud.run_job(small_spec())
        assert job.phase is JobPhase.DONE

    def test_mr_mode_moves_data_between_clients(self):
        cloud = mr_cloud()
        cloud.run_job(small_spec())
        peer = sum(getattr(c.input_fetcher, "peer_fetches", 0)
                   for c in cloud.clients)
        local = len(cloud.tracer.select("peer.local"))
        # Every reduce replica obtained every partition — from a peer, or
        # from its own disk when it mapped that index itself (locality).
        assert peer + local == SMALL["n_maps"] * SMALL["n_reducers"] * 2
        assert peer > 0

    def test_mr_hash_only_mode_uploads_no_map_output(self):
        cloud = mr_cloud()
        job = cloud.run_job(small_spec())
        spec = job.spec
        for i in range(spec.n_maps):
            for r in range(spec.n_reducers):
                assert not cloud.server.dataserver.has(spec.map_output_file(i, r))

    def test_legacy_mode_uploads_map_outputs(self):
        cloud = legacy_cloud()
        job = cloud.run_job(small_spec())
        spec = job.spec
        assert cloud.server.dataserver.has(spec.map_output_file(0, 0))

    def test_reduce_outputs_land_on_server_in_both_modes(self):
        for cloud in (legacy_cloud(), mr_cloud()):
            job = cloud.run_job(small_spec())
            for r in range(job.spec.n_reducers):
                assert cloud.server.dataserver.has(job.spec.reduce_output_file(r))

    def test_all_workunits_assimilated(self):
        cloud = mr_cloud()
        cloud.run_job(small_spec())
        states = {wu.state for wu in cloud.server.db.workunits.values()}
        assert states == {WorkunitState.ASSIMILATED}

    def test_mixed_population_legacy_runs_reduces_via_server(self):
        # Retro-compatibility (Section III.B): ordinary clients execute MR
        # jobs with data through the server.
        cloud = VolunteerCloud(seed=1, mr_config=BoincMRConfig(
            upload_map_outputs=True, reduce_from_peers=True))
        cloud.add_volunteers(4, mr=True)
        cloud.add_volunteers(4, mr=False)
        job = cloud.run_job(small_spec())
        assert job.phase is JobPhase.DONE

    def test_two_jobs_back_to_back(self):
        cloud = mr_cloud()
        job1 = cloud.run_job(small_spec("first"))
        job2 = cloud.run_job(small_spec("second"))
        assert job1.phase is JobPhase.DONE
        assert job2.phase is JobPhase.DONE
        assert job2.finished_at > job1.finished_at

    def test_concurrent_jobs(self):
        cloud = mr_cloud(n=10)
        a = cloud.submit(small_spec("a"))
        b = cloud.submit(small_spec("b"))
        cloud.run_until(cloud.sim.all_of([a.done, b.done]))
        assert a.phase is JobPhase.DONE and b.phase is JobPhase.DONE

    def test_serving_store_cleared_after_job(self):
        cloud = mr_cloud()
        cloud.run_job(small_spec())
        for client in cloud.clients:
            assert client.peer_store.serving_count == 0

    def test_duplicate_job_name_rejected(self):
        cloud = mr_cloud()
        cloud.submit(small_spec("dup"))
        with pytest.raises(ValueError):
            cloud.submit(small_spec("dup"))

    def test_timeout_raises(self):
        cloud = mr_cloud()
        job = cloud.submit(small_spec())
        with pytest.raises(SimulationError, match="did not fire"):
            cloud.run_until(job.done, timeout=5.0)


class TestDeterminism:
    def run_once(self, seed):
        cloud = mr_cloud(seed=seed)
        job = cloud.run_job(small_spec())
        return job.makespan(), dict(cloud.tracer.counts)

    def test_same_seed_identical(self):
        assert self.run_once(7) == self.run_once(7)

    def test_different_seeds_differ(self):
        m1, _ = self.run_once(7)
        m2, _ = self.run_once(8)
        assert m1 != m2


class TestByzantine:
    def test_byzantine_outputs_rejected_by_quorum(self):
        cloud = VolunteerCloud(seed=3)
        cloud.add_volunteers(6, mr=True)
        cloud.add_volunteers(2, mr=True, byzantine_rate=1.0)
        job = cloud.run_job(small_spec(), timeout=24 * 3600)
        assert job.phase is JobPhase.DONE
        # Corrupt hosts never appear as validated holders of map output.
        byz_names = {c.name for c in cloud.clients[6:]}
        for rec in job.map_tasks.values():
            assert not byz_names & set(rec.holders)
        # And the validator created extra replicas to break ties.
        assert len(cloud.tracer.select("validator.inconclusive")) > 0 or \
            len(cloud.tracer.select("transitioner.new_result")) > 0

    def test_occasional_byzantine_still_completes(self):
        cloud = VolunteerCloud(seed=5)
        cloud.add_volunteers(8, mr=True, byzantine_rate=0.2)
        job = cloud.run_job(small_spec(), timeout=24 * 3600)
        assert job.phase is JobPhase.DONE


class TestPeerFailureFallback:
    def test_peer_failures_fall_back_to_server(self):
        cfg = BoincMRConfig(upload_map_outputs=True, peer_failure_rate=1.0,
                            peer_retries=2)
        cloud = mr_cloud(mr_config=cfg)
        job = cloud.run_job(small_spec(), timeout=24 * 3600)
        assert job.phase is JobPhase.DONE
        fallbacks = sum(getattr(c.input_fetcher, "server_fallbacks", 0)
                        for c in cloud.clients)
        local = len(cloud.tracer.select("peer.local"))
        # Locally held partitions never hit the network; every other
        # partition failed peer-side and fell back to the server.
        assert fallbacks + local == SMALL["n_maps"] * SMALL["n_reducers"] * 2
        assert fallbacks > 0

    def test_no_fallback_available_fails_tasks_but_replicas_retry(self):
        # Pure hash-only mode with flaky peers: some reduce replicas fail,
        # but retries (new replicas / repeated attempts) eventually succeed
        # because failures are probabilistic per transfer.
        cfg = BoincMRConfig(upload_map_outputs=False, peer_failure_rate=0.3,
                            peer_retries=3)
        cloud = mr_cloud(seed=11, mr_config=cfg)
        job = cloud.run_job(small_spec(), timeout=48 * 3600)
        assert job.phase is JobPhase.DONE


class TestNatDeployment:
    def test_all_symmetric_nats_relay_through_server(self):
        nat = NatBox(nat_type=NatType.SYMMETRIC)
        cloud = VolunteerCloud(seed=2)
        cloud.add_volunteers(8, mr=True, nat=nat)
        job = cloud.run_job(small_spec(), timeout=24 * 3600)
        assert job.phase is JobPhase.DONE
        counts = cloud.connectivity.method_counts()
        assert counts.get("relay", 0) > 0
        assert counts.get("direct", 0) == 0

    def test_public_hosts_connect_directly(self):
        cloud = mr_cloud()  # default: no NAT
        cloud.run_job(small_spec())
        counts = cloud.connectivity.method_counts()
        assert set(counts) == {"direct"}


class TestEarlyReduceCreation:
    def test_overlap_mode_completes_and_overlaps(self):
        cfg = BoincMRConfig(upload_map_outputs=True, reduce_from_peers=False,
                            reduce_creation_fraction=0.5, fetch_poll_s=5.0)
        cloud = VolunteerCloud(seed=1, mr_config=cfg)
        cloud.add_volunteers(8, mr=False)
        job = cloud.run_job(small_spec(), timeout=24 * 3600)
        assert job.phase is JobPhase.DONE
        # Reduce WUs were created before the map phase finished.
        assert job.reduce_created_at < job.map_phase_done_at

    def test_invalid_overlap_config_rejected(self):
        with pytest.raises(ValueError, match="upload_map_outputs"):
            BoincMRConfig(reduce_creation_fraction=0.5,
                          upload_map_outputs=False)


class TestScaleVariants:
    @pytest.mark.parametrize("n_nodes,n_maps,n_reducers", [
        (4, 4, 1), (6, 12, 3), (12, 6, 2),
    ])
    def test_geometries_complete(self, n_nodes, n_maps, n_reducers):
        cloud = mr_cloud(n=n_nodes)
        job = cloud.run_job(MapReduceJobSpec(
            "geom", n_maps=n_maps, n_reducers=n_reducers, input_size=30e6))
        assert job.phase is JobPhase.DONE

    def test_heterogeneous_speeds(self):
        cloud = VolunteerCloud(seed=1)
        cloud.add_volunteers(4, mr=True, flops=1.0)
        cloud.add_volunteers(4, mr=True, flops=2.0)
        job = cloud.run_job(small_spec())
        assert job.phase is JobPhase.DONE

    def test_too_few_nodes_for_replication_rejected_by_scenario(self):
        from repro.experiments import Scenario

        with pytest.raises(ValueError, match="replication"):
            Scenario(name="x", n_nodes=1, n_maps=2, n_reducers=1)
