"""Tier-1 gates for the documentation layer.

Three enforcement points keep the docs from drifting away from the code:

- ``docs/check_docstrings.py`` — every public module/class documented,
  function coverage above its ratchet floor;
- ``docs/gen_api.py --check`` — the committed ``docs/api/*.md`` pages
  match a fresh render and no docstring cross-reference is broken;
- the README quickstart doctests — run here with
  :class:`DeprecationWarning` promoted to an error, so the front-page
  examples can never show a deprecated API.
"""

from __future__ import annotations

import doctest
import pathlib
import subprocess
import sys
import warnings

REPO = pathlib.Path(__file__).resolve().parent.parent


def _run(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, *argv], cwd=REPO,
                          capture_output=True, text=True)


def test_docstring_gate_passes():
    proc = _run(str(REPO / "docs" / "check_docstrings.py"))
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_api_reference_is_fresh_and_refs_resolve():
    proc = _run(str(REPO / "docs" / "gen_api.py"), "--check")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_api_reference_pages_are_committed():
    pages = sorted(p.name for p in (REPO / "docs" / "api").glob("*.md"))
    assert "index.md" in pages
    assert "repro.campaign.md" in pages
    assert len(pages) >= 10


def test_readme_doctests_clean_of_deprecations():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        result = doctest.testfile(str(REPO / "README.md"),
                                  module_relative=False,
                                  optionflags=doctest.ELLIPSIS)
    assert result.failed == 0, f"{result.failed} README doctest(s) failed"
    assert result.attempted >= 15, "README lost its executable examples"
