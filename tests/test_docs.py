"""Tier-1 gates for the documentation layer.

Four enforcement points keep the docs from drifting away from the code:

- ``docs/check_docstrings.py`` — every public module/class documented,
  function coverage above its ratchet floor;
- ``docs/gen_api.py --check`` — the committed ``docs/api/*.md`` pages
  match a fresh render and no docstring cross-reference is broken;
- ``docs/protocol.md`` — every schema-annotated JSON example validates
  against :data:`repro.gateway.protocol.SCHEMAS` and every served
  route/error code is documented;
- the README quickstart doctests — run here with
  :class:`DeprecationWarning` promoted to an error, so the front-page
  examples can never show a deprecated API.
"""

from __future__ import annotations

import doctest
import json
import pathlib
import re
import subprocess
import sys
import warnings

import pytest

from repro.gateway import protocol

REPO = pathlib.Path(__file__).resolve().parent.parent

#: ``<!-- schema: Name -->`` followed by a fenced JSON block.
_EXAMPLE_RE = re.compile(
    r"<!--\s*schema:\s*(?P<schema>\w+)\s*-->\s*\n```json\n"
    r"(?P<body>.*?)\n```",
    re.DOTALL)


def _protocol_doc() -> str:
    return (REPO / "docs" / "protocol.md").read_text(encoding="utf-8")


def _examples() -> list[tuple[str, str]]:
    doc = _protocol_doc()
    return [(m.group("schema"), m.group("body"))
            for m in _EXAMPLE_RE.finditer(doc)]


def _run(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, *argv], cwd=REPO,
                          capture_output=True, text=True)


def test_docstring_gate_passes():
    proc = _run(str(REPO / "docs" / "check_docstrings.py"))
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_api_reference_is_fresh_and_refs_resolve():
    proc = _run(str(REPO / "docs" / "gen_api.py"), "--check")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_api_reference_pages_are_committed():
    pages = sorted(p.name for p in (REPO / "docs" / "api").glob("*.md"))
    assert "index.md" in pages
    assert "repro.campaign.md" in pages
    assert len(pages) >= 10


class TestProtocolSpec:
    """docs/protocol.md is schema-validated against repro.gateway.protocol."""

    def test_has_examples(self):
        examples = _examples()
        assert len(examples) >= 9, (
            "docs/protocol.md lost its annotated JSON examples")

    @pytest.mark.parametrize("schema,body", _examples(),
                             ids=[s for s, _ in _examples()])
    def test_every_example_validates(self, schema, body):
        assert schema in protocol.SCHEMAS, (
            f"example annotated with unknown schema {schema!r}")
        payload = json.loads(body)
        problems = protocol.validate(schema, payload)
        assert not problems, (
            f"docs/protocol.md example for {schema} does not conform: "
            f"{problems}")

    def test_every_endpoint_documented(self):
        doc = _protocol_doc()
        for ep in protocol.ENDPOINTS:
            heading = f"### {ep.method} {ep.path}"
            assert heading in doc, (
                f"docs/protocol.md is missing a section for "
                f"{ep.method} {ep.path}")

    def test_every_error_code_documented(self):
        doc = _protocol_doc()
        for code, (status, _) in protocol.ERROR_CODES.items():
            assert f"`{code}`" in doc, (
                f"docs/protocol.md is missing error code {code!r}")
            assert str(status) in doc

    def test_reply_schemas_all_shown_as_examples(self):
        shown = {schema for schema, _ in _examples()}
        wire = {ep.request_schema for ep in protocol.ENDPOINTS}
        wire |= {ep.reply_schema for ep in protocol.ENDPOINTS}
        wire.discard(None)
        wire.add("Error")
        missing = wire - shown
        assert not missing, (
            f"docs/protocol.md has no JSON example for schema(s): "
            f"{sorted(missing)}")

    def test_checksum_examples_are_well_formed(self):
        for value in re.findall(r"crc32:[0-9a-f]+", _protocol_doc()):
            assert re.fullmatch(r"crc32:[0-9a-f]{8}", value), (
                f"malformed checksum literal {value!r} in protocol.md")

    def test_protocol_version_is_current(self):
        assert f"(v{protocol.PROTOCOL_VERSION})" in _protocol_doc()


def test_readme_doctests_clean_of_deprecations():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        result = doctest.testfile(str(REPO / "README.md"),
                                  module_relative=False,
                                  optionflags=doctest.ELLIPSIS)
    assert result.failed == 0, f"{result.failed} README doctest(s) failed"
    assert result.attempted >= 15, "README lost its executable examples"
