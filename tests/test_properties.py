"""Property-based tests (hypothesis) on core invariants.

These pin down the load-bearing guarantees: deterministic simulation,
conservation in the bandwidth allocator, exactness of the MapReduce
pipeline, and soundness of quorum validation.
"""

import collections

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FlowNetwork, Link, maxmin_rates
from repro.runtime import LocalRunner, default_partition, split_text
from repro.runtime.apps import WordCount
from repro.sim import RngRegistry, Simulator

# ---------------------------------------------------------------------------
# Simulator determinism
# ---------------------------------------------------------------------------

delays = st.lists(st.floats(min_value=0.0, max_value=1e4,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=40)


@given(delays)
def test_engine_executes_all_and_monotonically(ds):
    sim = Simulator()
    seen = []
    for d in ds:
        sim.schedule(d, lambda d=d: seen.append(sim.now))
    sim.run()
    assert len(seen) == len(ds)
    assert seen == sorted(seen)
    assert sim.now == max(ds)


@given(delays, st.integers(min_value=0, max_value=2**31 - 1))
def test_rng_streams_reproducible(ds, seed):
    def draw(seed):
        reg = RngRegistry(seed)
        return [reg.stream(f"s{i % 3}").random() for i in range(len(ds))]

    assert draw(seed) == draw(seed)


# ---------------------------------------------------------------------------
# Max-min fairness invariants
# ---------------------------------------------------------------------------

flow_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),   # src link index
        st.integers(min_value=4, max_value=7),   # dst link index
        st.floats(min_value=1.0, max_value=1e8, allow_nan=False),
        st.one_of(st.none(), st.floats(min_value=1e3, max_value=1e7)),
    ),
    min_size=1, max_size=15,
)


@given(flow_specs)
@settings(max_examples=60)
def test_maxmin_conservation_and_caps(specs):
    sim = Simulator()
    net = FlowNetwork(sim)
    links = [Link(f"l{i}", 8 * 10e6) for i in range(8)]  # 10 MB/s each
    flows = []
    for i, (a, b, size, cap) in enumerate(specs):
        flows.append(net.start_flow(f"f{i}", [links[a], links[b]], size,
                                    max_rate=cap))
    active = [f for f in flows if not f.finished]
    # 1. No link over capacity.
    for link in links:
        used = sum(f.rate for f in active if link in f.links)
        assert used <= link.capacity * (1 + 1e-6)
    # 2. No flow above its cap.
    for f in active:
        if f.max_rate is not None:
            assert f.rate <= f.max_rate * (1 + 1e-6)
    # 3. Every active flow gets a positive rate (no starvation).
    for f in active:
        assert f.rate > 0
    # 4. Max-min property: a flow below its cap must have a saturated link
    #    on which it has a maximal rate (else it could be raised).
    for f in active:
        if f.max_rate is not None and f.rate >= f.max_rate * (1 - 1e-6):
            continue
        bottlenecked = False
        for link in f.links:
            used = sum(g.rate for g in active if link in g.links)
            if used >= link.capacity * (1 - 1e-6):
                peers = [g.rate for g in active if link in g.links]
                if f.rate >= max(peers) * (1 - 1e-6):
                    bottlenecked = True
                    break
        assert bottlenecked, f"flow {f.name} could be raised"


@given(flow_specs)
@settings(max_examples=30)
def test_all_flows_eventually_complete(specs):
    sim = Simulator()
    net = FlowNetwork(sim)
    links = [Link(f"l{i}", 8 * 10e6) for i in range(8)]
    flows = []
    for i, (a, b, size, cap) in enumerate(specs):
        flows.append(net.start_flow(f"f{i}", [links[a], links[b]], size,
                                    max_rate=cap))
    sim.run(max_steps=100_000)
    assert all(f.finished for f in flows)
    total = sum(size for _a, _b, size, _c in specs)
    assert net.bytes_delivered == pytest.approx(total, rel=1e-6)


# ---------------------------------------------------------------------------
# MapReduce pipeline exactness
# ---------------------------------------------------------------------------

words = st.lists(
    st.text(alphabet="abcdefg", min_size=1, max_size=6),
    min_size=0, max_size=300,
)


@given(words, st.integers(min_value=1, max_value=9),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=60)
def test_wordcount_equals_counter(ws, n_maps, n_reducers):
    lines = []
    for i in range(0, len(ws), 7):
        lines.append(" ".join(ws[i:i + 7]))
    data = ("\n".join(lines) + "\n").encode() if lines else b""
    report = LocalRunner(WordCount(), n_maps, n_reducers).run(data)
    assert report.output == dict(collections.Counter(data.split()))


@given(st.binary(min_size=0, max_size=2000),
       st.integers(min_value=1, max_value=12))
def test_split_text_partitions_input(data, n):
    chunks = split_text(data, n)
    assert b"".join(chunks) == data
    assert len(chunks) == n


@given(st.text(min_size=0, max_size=30), st.integers(min_value=1, max_value=64))
def test_partitioner_stable_and_bounded(key, n_reducers):
    p1 = default_partition(key, n_reducers)
    p2 = default_partition(key, n_reducers)
    assert p1 == p2
    assert 0 <= p1 < n_reducers


# ---------------------------------------------------------------------------
# Quorum validation soundness
# ---------------------------------------------------------------------------

digest_lists = st.lists(st.sampled_from(["good", "bad1", "bad2"]),
                        min_size=2, max_size=6)


@given(digest_lists, st.integers(min_value=2, max_value=3))
@settings(max_examples=60)
def test_quorum_never_validates_minority(digests, quorum):
    quorum = min(quorum, len(digests))  # replication must cover the quorum
    from repro.boinc import (
        FileRef,
        OutputData,
        ProjectServer,
        ReportedResult,
        SchedulerRequest,
        Workunit,
        WorkunitState,
    )
    from repro.net import Network, SERVER_LINK

    sim = Simulator()
    net = Network(sim)
    server = ProjectServer(sim, net, net.add_host("server", SERVER_LINK))
    wu = server.submit_workunit(Workunit(
        id=server.db.new_wu_id(), app_name="a",
        input_files=(FileRef("in", 1.0),), flops=1.0,
        target_nresults=len(digests), min_quorum=quorum,
        max_total_results=len(digests)))
    server._feeder_pass()
    for i, digest in enumerate(digests):
        host = server.register_host(f"h{i}", 1.0)
        proc = sim.process(server.scheduler_rpc(SchedulerRequest(
            host_id=host.id, work_req_s=10.0)))
        sim.run(until_event=proc)
        reply = proc.value
        if not reply.assignments:
            continue
        rid = reply.assignments[0].result_id
        proc = sim.process(server.scheduler_rpc(SchedulerRequest(
            host_id=host.id, work_req_s=0.0,
            reports=[ReportedResult(rid, True, OutputData(digest), 1.0)])))
        sim.run(until_event=proc)
    server._transitioner_pass()
    server._validator_pass()
    counts = collections.Counter(digests)
    if wu.state is WorkunitState.VALIDATED:
        canonical = server.db.results[wu.canonical_result_id]
        # Whatever validated must have had at least `quorum` agreeing
        # replicas available.
        assert counts[canonical.output.digest] >= quorum
    else:
        # No digest reached the quorum among assigned replicas.
        assigned = min(len(digests), counts.total())
        assert all(c < quorum for c in counts.values()) or \
            wu.state is WorkunitState.ACTIVE


# ---------------------------------------------------------------------------
# Interval accumulator sanity under arbitrary open/close sequences
# ---------------------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(0, 5), st.floats(0, 100,
                                                       allow_nan=False)),
                max_size=40))
def test_interval_accumulator_never_negative(ops):
    from repro.sim import IntervalAccumulator

    acc = IntervalAccumulator()
    clock = 0.0
    for key, dt in ops:
        clock += dt
        try:
            acc.open(key, clock)
        except ValueError:
            try:
                acc.close(key, clock)
            except ValueError:
                pass
    assert all(d >= 0 for d in acc.durations())
