"""Tests for availability-trace replay."""

import numpy as np
import pytest

from repro.boinc.server import ServerConfig
from repro.core import BoincMRConfig, JobPhase, MapReduceJobSpec, VolunteerCloud
from repro.volunteers.traces import (
    AvailabilityTrace,
    TraceChurnController,
    diurnal_trace,
    load_traces_csv,
)


class TestAvailabilityTrace:
    def test_valid(self):
        tr = AvailabilityTrace("h", ((0.0, 10.0), (20.0, 30.0)))
        assert tr.available_at(5.0)
        assert not tr.available_at(15.0)
        assert not tr.available_at(10.0)  # half-open
        assert tr.total_available == 20.0

    def test_availability_fraction(self):
        tr = AvailabilityTrace("h", ((0.0, 10.0), (20.0, 30.0)))
        assert tr.availability_fraction(40.0) == pytest.approx(0.5)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            AvailabilityTrace("h", ((0.0, 10.0), (5.0, 20.0)))

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            AvailabilityTrace("h", ((5.0, 5.0),))


class TestCsvLoading:
    def test_parse(self):
        traces = load_traces_csv(
            "host,start,end\nA,0,100\nA,200,300\nB,50,80\n")
        assert set(traces) == {"A", "B"}
        assert traces["A"].intervals == ((0.0, 100.0), (200.0, 300.0))

    def test_unsorted_rows_sorted(self):
        traces = load_traces_csv("A,200,300\nA,0,100\n")
        assert traces["A"].intervals[0] == (0.0, 100.0)

    def test_bad_row_rejected(self):
        with pytest.raises(ValueError, match="host,start,end"):
            load_traces_csv("A,1\n")


class TestDiurnal:
    def test_one_interval_per_day(self):
        rng = np.random.default_rng(0)
        tr = diurnal_trace("h", days=14, rng=rng)
        assert len(tr.intervals) == 14

    def test_weekends_longer(self):
        rng = np.random.default_rng(0)
        tr = diurnal_trace("h", days=14, rng=rng, jitter_h=0.0)
        lengths = [e - s for s, e in tr.intervals]
        weekday = lengths[0]
        weekend = lengths[5]
        assert weekend > weekday

    def test_deterministic(self):
        a = diurnal_trace("h", 7, rng=np.random.default_rng(3))
        b = diurnal_trace("h", 7, rng=np.random.default_rng(3))
        assert a.intervals == b.intervals

    def test_invalid_days(self):
        with pytest.raises(ValueError):
            diurnal_trace("h", 0, rng=np.random.default_rng(0))


class TestTraceReplay:
    def test_client_goes_down_and_up_per_trace(self):
        cloud = VolunteerCloud(seed=1,
                               mr_config=BoincMRConfig(upload_map_outputs=True),
                               server_config=ServerConfig(delay_bound_s=600.0))
        clients = cloud.add_volunteers(6, mr=True)
        cloud.start()
        controller = TraceChurnController(cloud.sim, tracer=cloud.tracer)
        # First client offline during [100, 400).
        controller.manage(clients[0], AvailabilityTrace(
            clients[0].name, ((0.0, 100.0), (400.0, 1e6))))
        cloud.sim.run(until=500.0)
        off = cloud.tracer.times("churn.offline", host=clients[0].name)
        on = cloud.tracer.times("churn.online", host=clients[0].name)
        assert off and off[0] == pytest.approx(100.0)
        assert on and on[0] == pytest.approx(400.0)

    def test_job_completes_under_trace_churn(self):
        cloud = VolunteerCloud(seed=4,
                               mr_config=BoincMRConfig(upload_map_outputs=True),
                               server_config=ServerConfig(delay_bound_s=900.0))
        clients = cloud.add_volunteers(10, mr=True)
        cloud.start()
        controller = TraceChurnController(cloud.sim, tracer=cloud.tracer)
        for i, client in enumerate(clients[:5]):
            # Staggered early outages across half the cluster.
            start = 60.0 + 60.0 * i
            controller.manage(client, AvailabilityTrace(
                client.name, ((0.0, start), (start + 300.0, 1e7))))
        job = cloud.run_job(MapReduceJobSpec(
            "traced", n_maps=8, n_reducers=2, input_size=80e6),
            timeout=24 * 3600)
        assert job.phase is JobPhase.DONE
        # The sim stops at job completion; every outage scheduled before
        # that must have fired and been survived.
        offline = cloud.tracer.times("churn.offline")
        assert offline and all(t < job.finished_at for t in offline)
        assert len(offline) >= 3
