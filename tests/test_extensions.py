"""Tests for the future-work extensions: supernode overlay, TCP-Nice
uploads, MapReduce workflows, and adaptive replication."""

import pytest

from repro.boinc import ClientConfig, ProjectServer, ServerConfig
from repro.core import (
    BoincMRConfig,
    JobPhase,
    MapReduceJobSpec,
    VolunteerCloud,
    WorkflowStage,
    pipeline,
)
from repro.core.costmodel import GREP, WORD_COUNT
from repro.net import (
    EMULAB_LINK,
    LinkSpec,
    NatBox,
    NatType,
    Network,
    NoSupernodeAvailable,
    SupernodeOverlay,
    elect_supernodes,
)
from repro.sim import Simulator

SYM = NatBox(nat_type=NatType.SYMMETRIC)


def hosts_with(sim=None, specs=()):
    net = Network(sim or Simulator())
    return [net.add_host(name, spec, nat=nat) for name, spec, nat in specs]


class TestSupernodeElection:
    def test_prefers_reachable_then_uplink(self):
        hosts = hosts_with(specs=[
            ("natted_fat", LinkSpec(100e6, 100e6), SYM),
            ("public_slow", LinkSpec(10e6, 1e6), None),
            ("public_fat", LinkSpec(100e6, 50e6), None),
        ])
        chosen = elect_supernodes(hosts, 2)
        assert [h.name for h in chosen] == ["public_fat", "public_slow"]

    def test_all_natted_raises(self):
        hosts = hosts_with(specs=[("a", EMULAB_LINK, SYM),
                                  ("b", EMULAB_LINK, SYM)])
        with pytest.raises(NoSupernodeAvailable):
            elect_supernodes(hosts, 1)

    def test_count_validation(self):
        hosts = hosts_with(specs=[("a", EMULAB_LINK, None)])
        with pytest.raises(ValueError):
            elect_supernodes(hosts, 0)

    def test_deterministic(self):
        specs = [(f"h{i}", EMULAB_LINK, None) for i in range(6)]
        a = [h.name for h in elect_supernodes(hosts_with(specs=specs), 3)]
        b = [h.name for h in elect_supernodes(hosts_with(specs=specs), 3)]
        assert a == b


class TestSupernodeOverlay:
    def make(self, n_public=4, n_natted=8):
        specs = [(f"pub{i}", EMULAB_LINK, None) for i in range(n_public)]
        specs += [(f"nat{i}", EMULAB_LINK, SYM) for i in range(n_natted)]
        hosts = hosts_with(specs=specs)
        return hosts, SupernodeOverlay(hosts, n_supernodes=3, fanout=2)

    def test_attachments_balanced(self):
        _hosts, overlay = self.make()
        counts = overlay.attachment_counts().values()
        assert max(counts) - min(counts) <= 1

    def test_every_node_attached(self):
        hosts, overlay = self.make()
        for h in hosts:
            assert len(overlay.supernodes_of(h)) >= 1

    def test_supernode_serves_itself(self):
        _hosts, overlay = self.make()
        sn = overlay.supernodes[0]
        assert overlay.supernodes_of(sn) == [sn]

    def test_pick_relay_prefers_shared_supernode(self):
        hosts, overlay = self.make()
        a, b = hosts[-1], hosts[-2]
        relay = overlay.pick_relay(a, b)
        assert relay in overlay.supernodes
        shared = ({s.name for s in overlay.supernodes_of(a)}
                  & {s.name for s in overlay.supernodes_of(b)})
        if shared:
            assert relay.name in shared

    def test_offline_supernodes_skipped(self):
        hosts, overlay = self.make()
        for sn in overlay.supernodes[:-1]:
            sn.online = False
        relay = overlay.pick_relay(hosts[-1], hosts[-2])
        assert relay is overlay.supernodes[-1]

    def test_all_supernodes_offline_raises(self):
        hosts, overlay = self.make()
        for sn in overlay.supernodes:
            sn.online = False
        with pytest.raises(NoSupernodeAvailable):
            overlay.pick_relay(hosts[-1], hosts[-2])

    def test_overlay_relays_mapreduce_job(self):
        cloud = VolunteerCloud(seed=2)
        cloud.add_volunteers(2, mr=True,
                             link_spec=LinkSpec(200e6, 200e6, 0.001))
        cloud.add_volunteers(8, mr=True, nat=SYM)
        overlay = cloud.enable_supernode_overlay(n_supernodes=2, fanout=1)
        job = cloud.run_job(MapReduceJobSpec(
            "sn", n_maps=6, n_reducers=2, input_size=60e6),
            timeout=24 * 3600)
        assert job.phase is JobPhase.DONE
        assert cloud.connectivity.method_counts().get("relay", 0) > 0
        assert {h.name for h in overlay.supernodes} == {"host000", "host001"}


class TestNiceUploads:
    def test_background_upload_yields_to_foreground(self):
        from repro.boinc.dataserver import DataServer
        from repro.boinc.model import FileRef

        sim = Simulator()
        net = Network(sim)
        server = net.add_host("server", EMULAB_LINK)
        a = net.add_host("a", EMULAB_LINK)   # a mapper
        b = net.add_host("b", EMULAB_LINK)   # a reducer fetching from it
        ds = DataServer(sim, net, server)
        # The mapper's uplink carries both its server upload (background)
        # and the inter-client transfer a reducer depends on (foreground).
        bg_flow = ds.upload(FileRef("bg", 12.5e6), a, background=True)
        fg_flow = net.transfer(a, b, 12.5e6)
        # The peer transfer gets the whole uplink, nice yields entirely...
        assert fg_flow.rate == pytest.approx(12.5e6)
        assert bg_flow.rate == pytest.approx(0.0, abs=1.0)
        sim.run(until_event=fg_flow.done)
        assert sim.now == pytest.approx(1.0)
        # ...then the nice upload takes the freed capacity.
        sim.run(until_event=bg_flow.done)
        assert sim.now == pytest.approx(2.0, rel=0.05)

    def test_nice_uploads_dont_break_job(self):
        cloud = VolunteerCloud(
            seed=1,
            mr_config=BoincMRConfig(upload_map_outputs=True,
                                    reduce_from_peers=False),
            client_config=ClientConfig(nice_uploads=True))
        cloud.add_volunteers(8, mr=False)
        job = cloud.run_job(MapReduceJobSpec(
            "nice", n_maps=6, n_reducers=2, input_size=60e6),
            timeout=24 * 3600)
        assert job.phase is JobPhase.DONE


class TestWorkflows:
    def cloud(self, seed=4):
        cloud = VolunteerCloud(seed=seed)
        cloud.add_volunteers(10, mr=True)
        return cloud

    def test_two_stage_pipeline(self):
        wf = pipeline(self.cloud(), "etl", 100e6,
                      WorkflowStage("grep", n_maps=8, n_reducers=2, cost=GREP),
                      WorkflowStage("count", n_maps=4, n_reducers=2,
                                    cost=WORD_COUNT))
        jobs = wf.run()
        assert [j.spec.name for j in jobs] == ["etl.grep", "etl.count"]
        assert all(j.phase is JobPhase.DONE for j in jobs)
        assert wf.makespan() >= sum(wf.stage_makespans()) - 1e-6

    def test_stage_input_derived_from_previous_output(self):
        wf = pipeline(self.cloud(), "flow", 100e6,
                      WorkflowStage("a", n_maps=4, n_reducers=2),
                      WorkflowStage("b", n_maps=4, n_reducers=1))
        jobs = wf.run()
        stage_a = jobs[0].spec
        expected = stage_a.reduce_output_size() * stage_a.n_reducers
        assert jobs[1].spec.input_size == pytest.approx(expected)

    def test_stages_run_sequentially(self):
        wf = pipeline(self.cloud(), "seq", 60e6,
                      WorkflowStage("one", n_maps=4, n_reducers=2),
                      WorkflowStage("two", n_maps=4, n_reducers=2))
        jobs = wf.run()
        assert jobs[1].submitted_at >= jobs[0].finished_at

    def test_validation(self):
        cloud = self.cloud()
        with pytest.raises(ValueError):
            pipeline(cloud, "w", 1e6)  # no stages
        with pytest.raises(ValueError):
            pipeline(cloud, "w", 0,
                     WorkflowStage("a", n_maps=1, n_reducers=1))
        with pytest.raises(ValueError):
            pipeline(cloud, "w", 1e6,
                     WorkflowStage("dup", n_maps=1, n_reducers=1),
                     WorkflowStage("dup", n_maps=1, n_reducers=1))

    def test_double_start_rejected(self):
        wf = pipeline(self.cloud(), "once", 60e6,
                      WorkflowStage("a", n_maps=4, n_reducers=2))
        wf.start()
        with pytest.raises(RuntimeError):
            wf.start()


class TestAdaptiveReplication:
    def cloud(self, adaptive=True, byz=0.0, seed=5):
        cloud = VolunteerCloud(seed=seed, server_config=ServerConfig(
            adaptive_replication=adaptive, adaptive_trust_threshold=2,
            adaptive_spot_check_rate=0.1))
        cloud.add_volunteers(12, mr=True, byzantine_rate=byz)
        return cloud

    def run_two_jobs(self, cloud):
        cloud.run_job(MapReduceJobSpec("warm", n_maps=12, n_reducers=3,
                                       input_size=120e6), timeout=48 * 3600)
        job = cloud.run_job(MapReduceJobSpec("main", n_maps=12, n_reducers=3,
                                             input_size=120e6),
                            timeout=48 * 3600)
        executed = len([r for r in cloud.server.db.results.values()
                        if r.reported_at is not None])
        return job, executed

    def test_cold_start_escalates_everything(self):
        cloud = self.cloud()
        cloud.run_job(MapReduceJobSpec("warm", n_maps=6, n_reducers=2,
                                       input_size=60e6), timeout=48 * 3600)
        accepts = cloud.tracer.select("validator.adaptive_accept")
        escalations = cloud.tracer.select("validator.adaptive_escalate")
        assert len(escalations) >= 6  # nobody trusted yet
        assert len(accepts) <= 2

    def test_warm_reputation_accepts_singles(self):
        cloud = self.cloud()
        _job, _executed = self.run_two_jobs(cloud)
        accepts = [r for r in cloud.tracer.select("validator.adaptive_accept")]
        assert len(accepts) >= 3
        for rec in accepts:
            assert rec["reputation"] >= 2

    def test_adaptive_saves_executed_work(self):
        _job_a, executed_adaptive = self.run_two_jobs(self.cloud(adaptive=True))
        _job_f, executed_fixed = self.run_two_jobs(self.cloud(adaptive=False))
        assert executed_adaptive < executed_fixed

    def test_jobs_still_complete_with_byzantine_minority(self):
        cloud = self.cloud(byz=0.0, seed=7)
        cloud.clients[0].executor.byzantine_rate = 1.0
        job, _ = self.run_two_jobs(cloud)
        assert job.phase is JobPhase.DONE

    def test_unsent_replicas_cancelled_after_validation(self):
        # Plain (non-adaptive) server: validation cancels unsent spares.
        from repro.boinc.model import FileRef, OutputData, ResultState, Workunit
        from repro.boinc import ReportedResult, SchedulerRequest

        sim = Simulator()
        net = Network(sim)
        server = ProjectServer(sim, net, net.add_host("s", EMULAB_LINK))
        wu = server.submit_workunit(Workunit(
            id=server.db.new_wu_id(), app_name="a",
            input_files=(FileRef("in", 1.0),), flops=1.0,
            target_nresults=3, min_quorum=2))
        server._feeder_pass()
        for i in range(2):
            host = server.register_host(f"h{i}", 1.0)
            proc = sim.process(server.scheduler_rpc(SchedulerRequest(
                host_id=host.id, work_req_s=10.0)))
            sim.run(until_event=proc)
            rid = proc.value.assignments[0].result_id
            proc = sim.process(server.scheduler_rpc(SchedulerRequest(
                host_id=host.id, work_req_s=0.0,
                reports=[ReportedResult(rid, True, OutputData("d"), 1.0)])))
            sim.run(until_event=proc)
        server._transitioner_pass()
        server._validator_pass()
        states = [r.state for r in server.db.results_for_wu(wu.id)]
        assert states.count(ResultState.UNSENT) == 0  # third replica pulled
