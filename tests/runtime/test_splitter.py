"""Unit tests for input splitting."""

import pytest

from repro.runtime import iter_records, split_bytes, split_text


class TestSplitBytes:
    def test_reassembles(self):
        data = bytes(range(256)) * 10
        chunks = split_bytes(data, 7)
        assert b"".join(chunks) == data
        assert len(chunks) == 7

    def test_nearly_equal_sizes(self):
        chunks = split_bytes(b"x" * 1000, 3)
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_single_chunk(self):
        assert split_bytes(b"abc", 1) == [b"abc"]

    def test_more_chunks_than_bytes(self):
        chunks = split_bytes(b"ab", 5)
        assert b"".join(chunks) == b"ab"
        assert len(chunks) == 5

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            split_bytes(b"x", 0)


class TestSplitText:
    def test_reassembles_exactly(self):
        data = b"alpha beta\ngamma\ndelta epsilon zeta\neta\n"
        for n in (1, 2, 3, 4, 10):
            assert b"".join(split_text(data, n)) == data

    def test_no_chunk_starts_mid_line(self):
        data = b"".join(f"line{i:04d} word word\n".encode() for i in range(100))
        chunks = split_text(data, 7)
        for chunk in chunks:
            if chunk:
                assert chunk.startswith(b"line")
                assert chunk.endswith(b"\n")

    def test_word_multiset_preserved(self):
        data = b"the quick brown fox\njumps over\nthe lazy dog\n" * 50
        words_before = sorted(data.split())
        chunks = split_text(data, 9)
        words_after = sorted(w for c in chunks for w in c.split())
        assert words_before == words_after

    def test_missing_trailing_newline(self):
        data = b"one two\nthree four"
        chunks = split_text(data, 2)
        assert b"".join(chunks) == data

    def test_giant_single_line(self):
        data = b"x" * 1000 + b"\n"
        chunks = split_text(data, 4)
        assert b"".join(chunks) == data
        # The whole record lands in one chunk.
        assert sum(1 for c in chunks if c) == 1

    def test_empty_input(self):
        chunks = split_text(b"", 3)
        assert b"".join(chunks) == b""
        assert len(chunks) == 3

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            split_text(b"x", 0)


class TestIterRecords:
    def test_offsets_and_records(self):
        chunk = b"aa\nbbb\nc\n"
        records = list(iter_records(chunk))
        assert records == [(0, b"aa"), (3, b"bbb"), (7, b"c")]

    def test_no_trailing_delimiter(self):
        assert list(iter_records(b"ab\ncd")) == [(0, b"ab"), (3, b"cd")]

    def test_empty(self):
        assert list(iter_records(b"")) == []

    def test_empty_lines_preserved(self):
        assert list(iter_records(b"a\n\nb\n")) == [(0, b"a"), (2, b""), (3, b"b")]
