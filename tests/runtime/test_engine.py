"""Unit tests for the local MapReduce engine and bundled apps."""

import collections

import pytest

from repro.runtime import FnApp, LocalRunner, default_partition
from repro.runtime.apps import (
    DistributedGrep,
    DistributedSort,
    InvertedIndex,
    MatchCount,
    WordCount,
    merge_sorted_output,
    sample_boundaries,
)
from repro.workloads import generate_corpus, tag_documents

TEXT = b"the quick brown fox jumps over the lazy dog\nthe dog barks loudly\n" * 40


class TestPartitioner:
    def test_deterministic(self):
        assert default_partition(b"word", 5) == default_partition(b"word", 5)

    def test_in_range(self):
        for key in (b"a", b"zz", "unicode", 42, ("tuple", 1)):
            assert 0 <= default_partition(key, 7) < 7

    def test_roughly_uniform(self):
        counts = collections.Counter(
            default_partition(f"key{i}".encode(), 4) for i in range(4000))
        for c in counts.values():
            assert 800 < c < 1200

    def test_invalid_reducers(self):
        with pytest.raises(ValueError):
            default_partition(b"x", 0)


class TestWordCount:
    def test_matches_counter_ground_truth(self):
        runner = LocalRunner(WordCount(), n_maps=5, n_reducers=3)
        report = runner.run(TEXT)
        assert report.output == dict(collections.Counter(TEXT.split()))

    def test_single_map_single_reduce(self):
        runner = LocalRunner(WordCount(), n_maps=1, n_reducers=1)
        report = runner.run(b"a b a\n")
        assert report.output == {b"a": 2, b"b": 1}

    def test_result_independent_of_geometry(self):
        outputs = []
        for n_maps, n_red in [(1, 1), (4, 2), (16, 5), (7, 3)]:
            runner = LocalRunner(WordCount(), n_maps=n_maps, n_reducers=n_red)
            outputs.append(runner.run(TEXT).output)
        assert all(o == outputs[0] for o in outputs)

    def test_parallel_map_equals_serial(self):
        serial = LocalRunner(WordCount(), 8, 3).run(TEXT)
        parallel = LocalRunner(WordCount(), 8, 3).run(TEXT, parallel=True)
        assert serial.output == parallel.output

    def test_combiner_shrinks_intermediate(self):
        with_comb = LocalRunner(WordCount(), 4, 2).run(TEXT)
        no_comb = LocalRunner(
            FnApp(lambda k, v: ((w, 1) for w in v.split()),
                  lambda k, vs: [sum(vs)]),
            4, 2).run(TEXT)
        assert with_comb.output == no_comb.output
        assert with_comb.intermediate_bytes < no_comb.intermediate_bytes

    def test_lowercase_option(self):
        runner = LocalRunner(WordCount(lowercase=True), 2, 2)
        report = runner.run(b"Dog dog DOG\n")
        assert report.output == {b"dog": 3}

    def test_task_reports(self):
        runner = LocalRunner(WordCount(), n_maps=4, n_reducers=2)
        report = runner.run(TEXT)
        assert len(report.map_tasks()) == 4
        assert len(report.reduce_tasks()) == 2
        assert sum(t.bytes_in for t in report.map_tasks()) == len(TEXT)
        assert all(t.records_in > 0 for t in report.map_tasks())

    def test_empty_input(self):
        report = LocalRunner(WordCount(), 3, 2).run(b"")
        assert report.output == {}


class TestGrep:
    def test_grep_finds_matching_lines(self):
        runner = LocalRunner(DistributedGrep(rb"barks"), 4, 2)
        report = runner.run(TEXT)
        assert list(report.output) == [b"barks"]
        assert len(report.output[b"barks"]) == 40

    def test_grep_no_match(self):
        runner = LocalRunner(DistributedGrep(rb"zebra"), 4, 2)
        assert runner.run(TEXT).output == {}

    def test_matchcount(self):
        runner = LocalRunner(MatchCount(rb"dog"), 4, 2)
        report = runner.run(TEXT)
        assert report.output == {b"dog": 80}

    def test_grep_intermediate_smaller_than_wordcount(self):
        g = LocalRunner(DistributedGrep(rb"barks"), 4, 2).run(TEXT)
        w = LocalRunner(FnApp(lambda k, v: ((x, 1) for x in v.split()),
                              lambda k, vs: [sum(vs)]), 4, 2).run(TEXT)
        assert g.intermediate_bytes < w.intermediate_bytes


class TestInvertedIndex:
    def test_postings(self):
        data = tag_documents(b"alpha beta\nbeta gamma\nalpha\n", n_docs=3)
        report = LocalRunner(InvertedIndex(), 2, 2).run(data)
        postings = report.output
        assert postings[b"beta"] == sorted(set(postings[b"beta"]))
        docs_with_alpha = postings[b"alpha"]
        assert len(docs_with_alpha) >= 1

    def test_untagged_lines_use_offsets(self):
        report = LocalRunner(InvertedIndex(), 1, 1).run(b"x y\nx\n")
        assert set(report.output[b"x"]) == {b"0", b"4"}


class TestSort:
    def test_global_order(self):
        corpus = generate_corpus(20_000, seed=3)
        lines = corpus.splitlines()
        boundaries = sample_boundaries(lines[::10], n_reducers=4)
        app = DistributedSort(boundaries)
        runner = LocalRunner(app, n_maps=6, n_reducers=4)
        # Per-reducer outputs, concatenated in partition order, must be the
        # globally sorted line sequence (duplicates preserved).
        merged = merge_sorted_output(_outputs_by_reducer(runner, corpus))
        assert merged == sorted(lines)

    def test_boundaries_validation(self):
        app = DistributedSort([b"m"])
        with pytest.raises(ValueError):
            app.partition(b"x", 5)

    def test_sample_boundaries_count(self):
        assert len(sample_boundaries([b"a", b"b", b"c", b"d"], 3)) == 2
        assert sample_boundaries([b"a"], 1) == []


def _outputs_by_reducer(runner, corpus):
    from repro.runtime import split_text

    chunks = split_text(corpus, runner.n_maps)
    blobs = {}
    for i, chunk in enumerate(chunks):
        _report, bs = runner.run_map_task(i, chunk)
        for r, blob in bs.items():
            blobs[(i, r)] = blob
    outputs = []
    for r in range(runner.n_reducers):
        _rep, out = runner.run_reduce_task(
            r, [blobs[(i, r)] for i in range(runner.n_maps)])
        outputs.append(out)
    return outputs
