"""Tests for cost-model calibration from real runs."""

import pytest

from repro.runtime.apps import DistributedGrep, WordCount
from repro.runtime.calibrate import measure_cost_model, profile_app
from repro.workloads import generate_corpus

CORPUS = generate_corpus(200_000, seed=4)


class TestProfileApp:
    def test_measures_volumes(self):
        m = profile_app(WordCount(), CORPUS, n_maps=4, n_reducers=2)
        assert m.input_bytes == len(CORPUS)
        assert m.intermediate_bytes > 0
        assert m.output_bytes > 0
        assert m.map_seconds > 0 and m.reduce_seconds > 0

    def test_ratios_sane_for_wordcount(self):
        m = profile_app(WordCount(), CORPUS, n_maps=4, n_reducers=2)
        # The combiner collapses the Zipf head, so intermediate < input.
        assert 0.0 < m.intermediate_ratio < 2.0

    def test_grep_intermediate_tiny(self):
        wc = profile_app(WordCount(), CORPUS, n_maps=4, n_reducers=2)
        gr = profile_app(DistributedGrep(rb"qqqq-no-match"), CORPUS,
                         n_maps=4, n_reducers=2)
        assert gr.intermediate_ratio < wc.intermediate_ratio

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            profile_app(WordCount(), b"")


class TestMeasureCostModel:
    def test_anchored_scale(self):
        model = measure_cost_model(WordCount(), CORPUS,
                                   anchor_map_throughput=0.6e6)
        assert model.map_throughput == 0.6e6
        assert model.reduce_throughput > 0
        assert model.intermediate_ratio > 0

    def test_invalid_anchor(self):
        with pytest.raises(ValueError):
            measure_cost_model(WordCount(), CORPUS, anchor_map_throughput=0)

    def test_measured_model_drives_simulation(self):
        from repro.core import MapReduceJobSpec, VolunteerCloud

        model = measure_cost_model(WordCount(), CORPUS)
        cloud = VolunteerCloud(seed=1)
        cloud.add_volunteers(8, mr=True)
        job = cloud.run_job(MapReduceJobSpec(
            "measured", n_maps=6, n_reducers=2, input_size=60e6, cost=model),
            timeout=48 * 3600)
        assert job.finished

    def test_ratio_preserved_under_anchoring(self):
        m = profile_app(WordCount(), CORPUS, n_maps=4, n_reducers=2)
        model = measure_cost_model(WordCount(), CORPUS, n_maps=4,
                                   n_reducers=2, anchor_map_throughput=1e6)
        measured_ratio = m.reduce_throughput / m.map_throughput
        model_ratio = model.reduce_throughput / model.map_throughput
        # Timing noise between the two runs is the only slack.
        assert model_ratio == pytest.approx(measured_ratio, rel=0.8)
