"""Tests for the file-backed MapReduce runner."""

import collections

import pytest

from repro.runtime import FileRunner, LocalRunner
from repro.runtime.apps import WordCount
from repro.workloads import generate_corpus


@pytest.fixture
def corpus_file(tmp_path):
    corpus = generate_corpus(50_000, seed=9)
    path = tmp_path / "input.txt"
    path.write_bytes(corpus)
    return path, corpus


class TestFileRunner:
    def test_matches_in_memory_runner(self, tmp_path, corpus_file):
        path, corpus = corpus_file
        fr = FileRunner(WordCount(), 4, 2, tmp_path / "work", job_name="wc")
        report = fr.run(path)
        memory = LocalRunner(WordCount(), 4, 2).run(corpus)
        assert report.output == memory.output

    def test_partition_files_named_like_simulated_system(self, tmp_path,
                                                         corpus_file):
        path, _ = corpus_file
        fr = FileRunner(WordCount(), 3, 2, tmp_path / "work", job_name="wc")
        fr.run(path)
        for i in range(3):
            for r in range(2):
                assert (tmp_path / "work" / f"wc_m{i}_r{r}").exists()

    def test_output_files_paper_format(self, tmp_path, corpus_file):
        path, corpus = corpus_file
        fr = FileRunner(WordCount(), 2, 2, tmp_path / "work")
        fr.run(path)
        line = fr.output_path(0).read_bytes().splitlines()[0]
        word, _sep, count = line.rpartition(b" ")
        assert count.isdigit()
        assert word in corpus

    def test_merged_output_round_trips(self, tmp_path, corpus_file):
        path, corpus = corpus_file
        fr = FileRunner(WordCount(), 4, 3, tmp_path / "work")
        fr.run(path)
        merged = fr.merged_output()
        assert merged == dict(collections.Counter(corpus.split()))

    def test_partition_sizes_recorded(self, tmp_path, corpus_file):
        path, _ = corpus_file
        fr = FileRunner(WordCount(), 2, 2, tmp_path / "work")
        report = fr.run(path)
        assert len(report.partition_bytes) == 4
        for (i, r), size in report.partition_bytes.items():
            assert size == fr.partition_path(i, r).stat().st_size

    def test_cleanup_intermediate(self, tmp_path, corpus_file):
        path, _ = corpus_file
        fr = FileRunner(WordCount(), 2, 2, tmp_path / "work")
        fr.run(path, cleanup_intermediate=True)
        assert not fr.partition_path(0, 0).exists()
        assert fr.output_path(0).exists()

    def test_reduce_before_map_fails(self, tmp_path):
        fr = FileRunner(WordCount(), 2, 2, tmp_path / "work")
        with pytest.raises(FileNotFoundError, match="map task"):
            fr.run_reduce_task(0)

    def test_map_tasks_runnable_out_of_order(self, tmp_path, corpus_file):
        """Map tasks are independent — any execution order works (the
        volunteer cloud runs them on different machines at random times)."""
        path, corpus = corpus_file
        from repro.runtime import split_text

        chunks = split_text(corpus, 4)
        fr = FileRunner(WordCount(), 4, 2, tmp_path / "work")
        for i in (3, 0, 2, 1):
            fr.run_map_task(i, chunks[i])
        output = {}
        for r in range(2):
            _rep, part = fr.run_reduce_task(r)
            output.update(part)
        assert output == dict(collections.Counter(corpus.split()))
