"""Scenario -> CloudSpec unification and the scale-out study plumbing."""

import pytest

from repro.boinc.client import ClientConfig
from repro.experiments import Scenario, build_cloud, build_scale_cloud, scale_out
from repro.net import ADSL_LINK, CABLE_LINK, EMULAB_LINK, SERVER_LINK
from repro.net.flows import FullAllocator, IncrementalAllocator


class TestScenarioCloudSpec:
    def test_defaults_match_paper_testbed(self):
        spec = Scenario(name="s", n_nodes=4, n_maps=4, n_reducers=2).cloud_spec()
        assert spec.server_link is EMULAB_LINK
        assert spec.allocator == "incremental"

    def test_fields_flow_through(self):
        cc = ClientConfig(backoff_max_s=60.0)
        sc = Scenario(name="s", n_nodes=4, n_maps=4, n_reducers=2,
                      link=CABLE_LINK, client_config=cc, allocator="full",
                      seed=11)
        spec = sc.cloud_spec()
        assert spec.seed == 11
        assert spec.server_link is CABLE_LINK
        assert spec.client_config is cc
        assert spec.allocator == "full"

    def test_server_link_override(self):
        sc = Scenario(name="s", n_nodes=4, n_maps=4, n_reducers=2,
                      link=ADSL_LINK, server_link=SERVER_LINK)
        spec = sc.cloud_spec()
        assert spec.server_link is SERVER_LINK
        cloud = build_cloud(sc)
        assert cloud.server_host.uplink.capacity == pytest.approx(
            SERVER_LINK.up_bps / 8.0)
        # Volunteers keep the volunteer profile.
        assert cloud.clients[0].host.uplink.capacity == pytest.approx(
            ADSL_LINK.up_bps / 8.0)

    def test_link_spec_alias(self):
        sc = Scenario(name="s", n_nodes=4, n_maps=4, n_reducers=2,
                      link=CABLE_LINK)
        assert sc.link_spec is CABLE_LINK

    def test_build_cloud_respects_allocator(self):
        sc = Scenario(name="s", n_nodes=4, n_maps=4, n_reducers=2,
                      allocator="full")
        assert isinstance(build_cloud(sc).net.flownet.allocator, FullAllocator)


class TestScaleStudy:
    def test_build_scale_cloud_shape(self):
        cloud, jobs = build_scale_cloud(100, seed=3)
        assert len(cloud.clients) == 100
        assert len(jobs) == 1  # one job per 200 volunteers, min 1
        assert isinstance(cloud.net.flownet.allocator, IncrementalAllocator)
        cloud2, jobs2 = build_scale_cloud(400, seed=3)
        assert len(jobs2) == 2

    def test_scale_out_smoke(self):
        point = scale_out(40, seed=1)
        assert point.n_nodes == 40
        assert point.events > 0
        assert point.events_per_s > 0
        assert point.peak_queue_depth > 0
        assert point.makespan_s > 0
        d = point.as_dict()
        assert d["allocator"] == "incremental"

    def test_scale_out_allocators_agree_on_makespan(self):
        inc = scale_out(40, seed=1, allocator="incremental")
        full = scale_out(40, seed=1, allocator="full")
        assert inc.makespan_s == pytest.approx(full.makespan_s, rel=0.05)
