"""Load-harness tests: small-fleet replay with the full gate set."""

import numpy as np

from repro.gateway import LoadConfig, LoadReport, run_loadgen
from repro.gateway.loadgen import (
    client_schedule,
    oracle_payload,
    percentiles_ms,
)


class TestSchedules:
    def test_deterministic_per_seed(self):
        cfg = LoadConfig(seed=9, duration_s=4.0)
        assert client_schedule(3, cfg) == client_schedule(3, cfg)
        assert client_schedule(3, cfg) != client_schedule(4, cfg)

    def test_instants_inside_run_window(self):
        cfg = LoadConfig(seed=2, duration_s=5.0, polls_per_client=6)
        for index in range(20):
            for t in client_schedule(index, cfg):
                assert 0.0 <= t < cfg.duration_s

    def test_sorted(self):
        sched = client_schedule(0, LoadConfig(seed=1))
        assert sched == sorted(sched)


class TestPercentiles:
    def test_exact_values(self):
        samples = [i / 1000.0 for i in range(1, 101)]  # 1ms..100ms
        p = percentiles_ms(samples)
        assert p["max"] == 100.0
        assert 50.0 <= p["p50"] <= 51.0
        assert 99.0 <= p["p99"] <= 100.0

    def test_empty(self):
        assert percentiles_ms([]) == {"p50": 0.0, "p90": 0.0,
                                      "p99": 0.0, "max": 0.0}


class TestOracle:
    def test_oracle_is_deterministic(self):
        cfg = LoadConfig(corpus_bytes=20_000, n_maps=3, n_reducers=2)
        assert oracle_payload(cfg) == oracle_payload(cfg)

    def test_oracle_depends_on_seed(self):
        a = LoadConfig(corpus_bytes=20_000, seed=1)
        b = LoadConfig(corpus_bytes=20_000, seed=2)
        assert oracle_payload(a) != oracle_payload(b)


class TestSmallReplay:
    def test_25_client_replay_hits_every_gate(self):
        report = run_loadgen(config=LoadConfig(
            n_clients=25, duration_s=2.5, polls_per_client=4, seed=3,
            corpus_bytes=40_000, n_maps=4, n_reducers=2,
            replication=2, quorum=2, drain_s=30.0))
        assert isinstance(report, LoadReport)
        assert report.job_state == "done"
        assert report.errors == 0
        assert report.lost_results == 0
        assert report.duplicated_results == 0
        assert report.equivalent
        assert report.rpcs >= 25  # every client got at least one poll in
        assert report.latency_ms["p99"] >= report.latency_ms["p50"] >= 0
        doc = report.to_dict()
        assert doc["kind"] == "gateway"
        assert np.isfinite(doc["latency_ms"]["p99"])
