"""Live gateway server tests, including the hard failure paths:

- client disconnect mid-upload (no partial blob may land);
- duplicate result report (idempotent accept, counted, single assimilate);
- server restart with in-flight leases (state adoption + lease expiry).
"""

import collections
import socket
import time

import pytest

from repro.boinc.model import ResultState
from repro.gateway import (
    GatewayClient,
    GatewayConfig,
    GatewayError,
    GatewayServer,
    execute_task,
    run_volunteer,
)
from repro.gateway import protocol
from repro.workloads import generate_corpus


@pytest.fixture()
def handle():
    h = GatewayServer.in_thread(GatewayConfig(daemon_period_s=0.01))
    yield h
    h.close()


@pytest.fixture()
def client(handle):
    c = GatewayClient(handle.address)
    yield c
    c.close()


def _poll_for_assignment(client, host_id, tries=200):
    """Poll the scheduler until it hands out at least one task."""
    for _ in range(tries):
        reply = client.scheduler_rpc(host_id, work_req_s=1.0)
        if reply["assignments"]:
            return reply["assignments"]
        time.sleep(0.01)
    raise AssertionError("no assignment within the polling budget")


class TestBasics:
    def test_healthz(self, client):
        doc = client.health()
        assert doc == {"ok": True, "version": protocol.PROTOCOL_VERSION}

    def test_register_is_idempotent_by_name(self, client):
        a = client.register("twin", flops=1e9)
        b = client.register("twin", flops=1e9)
        assert a == b

    def test_scheduler_unknown_host(self, client):
        with pytest.raises(GatewayError) as err:
            client.scheduler_rpc(999, work_req_s=1.0)
        assert err.value.code == "unknown_host"

    def test_data_not_found(self, client):
        with pytest.raises(GatewayError) as err:
            client.download("no-such-blob")
        assert err.value.code == "not_found"

    def test_download_has_checksum_header(self, handle, client):
        handle.server.store.put("blob", b"payload")
        assert client.download("blob") == b"payload"

    def test_method_not_allowed(self, client):
        with pytest.raises(GatewayError) as err:
            client.request("GET", "/rpc/scheduler")
        assert err.value.code == "method_not_allowed"
        assert err.value.status == 405

    def test_bad_request_body(self, client):
        with pytest.raises(GatewayError) as err:
            client.request("POST", "/rpc/register", b"not json",
                           {"Content-Type": "application/json"})
        assert err.value.code == "bad_request"

    def test_schema_violation_rejected(self, client):
        with pytest.raises(GatewayError) as err:
            client.request("POST", "/rpc/register",
                           protocol.dumps({"name": "x"}))
        assert err.value.code == "bad_request"
        assert "flops" in err.value.detail

    def test_unknown_route(self, client):
        with pytest.raises(GatewayError) as err:
            client.request("GET", "/nope")
        assert err.value.code == "not_found"

    def test_status_page(self, handle, client):
        client.register("probe", flops=1e9)
        doc = client.status()
        assert protocol.validate("StatusReply", doc) == []
        assert doc["counts"]["hosts"] == 1

    def test_unavailable_maps_to_503_with_retry_after(self, handle):
        client = GatewayClient(handle.address, retries=1)
        host_id = client.register("flaky", flops=1e9)
        handle.server.core.available = False
        with pytest.raises(GatewayError) as err:
            client.scheduler_rpc(host_id, work_req_s=1.0)
        assert err.value.status == 503
        assert err.value.retry_after_s > 0
        handle.server.core.available = True
        assert client.scheduler_rpc(host_id, work_req_s=1.0)["no_work"] \
            in (True, False)
        client.close()

    def test_unknown_job_app_rejected(self, client):
        with pytest.raises(GatewayError) as err:
            client.submit_job("j", "no-such-app", 1000, 1, 1, 1)
        assert err.value.code == "bad_request"


class TestEndToEnd:
    def test_single_volunteer_completes_job(self, handle):
        corpus = generate_corpus(20_000, seed=3)
        handle.submit_job("wc", "wordcount", corpus, n_maps=3, n_reducers=2)
        stats = run_volunteer(handle.address, name="solo", idle_limit=30)
        assert stats.tasks_done == 5  # 3 maps + 2 reduces
        out = handle.result("wc", timeout=10)
        assert out == dict(collections.Counter(corpus.split()))

    def test_quorum_two_needs_two_hosts(self, handle):
        corpus = generate_corpus(8_000, seed=4)
        handle.submit_job("q2", "wordcount", corpus, n_maps=2,
                          n_reducers=1, replication=2, quorum=2)
        # One host may hold at most one replica of a workunit, and the
        # reduce replicas only exist after both map replicas validate —
        # so keep sending fresh volunteer identities until the job seals.
        job = handle.server.jobs.jobs["q2"]
        for i in range(8):
            run_volunteer(handle.address, name=f"rep-{i}", idle_limit=15)
            if job.finished.is_set():
                break
        out = handle.result("q2", timeout=10)
        assert out == dict(collections.Counter(corpus.split()))
        job = handle.server.jobs.jobs["q2"]
        assert job.assimilated == 3  # each WU exactly once despite 2 replicas

    def test_job_status_and_output_endpoints(self, handle, client):
        corpus = generate_corpus(5_000, seed=5)
        handle.submit_job("st", "wordcount", corpus, n_maps=1, n_reducers=1)
        status = client.job_status("st")
        assert protocol.validate("JobStatus", status) == []
        assert status["state"] == "running"
        with pytest.raises(GatewayError) as err:
            client.job_output("st")
        assert err.value.code == "not_ready"
        run_volunteer(handle.address, name="worker", idle_limit=20)
        handle.result("st", timeout=10)
        payload = client.job_output("st")
        assert payload == handle.server.jobs.jobs["st"].output_payload


class TestDisconnectMidUpload:
    def test_partial_upload_leaves_no_blob(self, handle, client):
        corpus = generate_corpus(5_000, seed=6)
        handle.submit_job("cut", "wordcount", corpus, n_maps=1, n_reducers=1)
        host_id = client.register("cutter", flops=1e9)
        task = _poll_for_assignment(client, host_id)[0]
        result_id = task["result_id"]

        host, port = handle.address.split(":")
        raw = socket.create_connection((host, int(port)))
        raw.sendall((f"POST /upload/{result_id}/cut.m0.p0 HTTP/1.1\r\n"
                     "Content-Length: 1000\r\n\r\n").encode())
        raw.sendall(b"x" * 100)  # 10% of the promised body, then vanish
        raw.close()

        deadline = time.time() + 5.0
        while (handle.server.metrics.counter(
                "gateway.disconnects_total").value < 1
               and time.time() < deadline):
            time.sleep(0.01)
        assert handle.server.metrics.counter(
            "gateway.disconnects_total").value >= 1
        assert not handle.server.store.has("cut.m0.p0")
        res = handle.server.core.db.results[result_id]
        assert res.received_at is None

        # The client retries the whole task: upload + report still work.
        report = execute_task(client, task)
        client.scheduler_rpc(host_id, work_req_s=0.0, reports=[report])
        run_volunteer(handle.address, name="finisher", idle_limit=20)
        out = handle.result("cut", timeout=10)
        assert out == dict(collections.Counter(corpus.split()))

    def test_checksum_mismatch_rejected(self, handle, client):
        corpus = generate_corpus(4_000, seed=7)
        handle.submit_job("ck", "wordcount", corpus, n_maps=1, n_reducers=1)
        host_id = client.register("checker", flops=1e9)
        task = _poll_for_assignment(client, host_id)[0]
        with pytest.raises(GatewayError) as err:
            client.request(
                "POST", f"/upload/{task['result_id']}/ck.m0.p0",
                b"real bytes",
                {protocol.CHECKSUM_HEADER: "crc32:00000000"})
        assert err.value.code == "checksum_mismatch"
        assert not handle.server.store.has("ck.m0.p0")

    def test_upload_for_unissued_result(self, handle, client):
        with pytest.raises(GatewayError) as err:
            client.upload(424242, "orphan", b"data")
        assert err.value.code == "unknown_result"


class TestDuplicateReport:
    def test_replayed_report_is_dropped_and_counted(self, handle, client):
        corpus = generate_corpus(6_000, seed=8)
        handle.submit_job("dup", "wordcount", corpus, n_maps=1, n_reducers=1)
        host_id = client.register("replayer", flops=1e9)
        task = _poll_for_assignment(client, host_id)[0]
        report = execute_task(client, task)
        client.scheduler_rpc(host_id, work_req_s=0.0, reports=[report])
        # Network flake: the client re-sends the same report.
        client.scheduler_rpc(host_id, work_req_s=0.0, reports=[report])
        assert handle.server.metrics.counter(
            "gateway.duplicate_reports_total").value == 1

        run_volunteer(handle.address, name="closer", idle_limit=20)
        out = handle.result("dup", timeout=10)
        assert out == dict(collections.Counter(corpus.split()))
        assert handle.server.jobs.jobs["dup"].assimilated == 2

    def test_report_for_foreign_result_dropped(self, handle, client):
        corpus = generate_corpus(6_000, seed=9)
        handle.submit_job("f", "wordcount", corpus, n_maps=1, n_reducers=1)
        mine = client.register("honest", flops=1e9)
        thief = client.register("thief", flops=1e9)
        task = _poll_for_assignment(client, mine)[0]
        report = execute_task(client, task)
        # The wrong host tries to claim the result: dropped + counted.
        client.scheduler_rpc(thief, work_req_s=0.0, reports=[report])
        assert handle.server.metrics.counter(
            "gateway.duplicate_reports_total").value == 1
        res = handle.server.core.db.results[task["result_id"]]
        assert res.state is ResultState.IN_PROGRESS  # lease still honest's
        client.scheduler_rpc(mine, work_req_s=0.0, reports=[report])
        assert res.state is ResultState.OVER


class TestRestartWithLeases:
    def test_state_survives_restart_and_lease_completes(self):
        first = GatewayServer.in_thread(GatewayConfig(daemon_period_s=0.01))
        corpus = generate_corpus(6_000, seed=10)
        first.submit_job("boot", "wordcount", corpus, n_maps=1, n_reducers=1)
        client = GatewayClient(first.address)
        host_id = client.register("survivor", flops=1e9)
        task = _poll_for_assignment(client, host_id)[0]
        client.close()
        state = first.server.state
        first.close()  # gateway down; the lease is still in flight

        second = GatewayServer.in_thread(state=state)
        try:
            res = second.server.core.db.results[task["result_id"]]
            assert res.state is ResultState.IN_PROGRESS
            client = GatewayClient(second.address)
            assert client.register("survivor", flops=1e9) == host_id
            report = execute_task(client, task)
            client.scheduler_rpc(host_id, work_req_s=0.0, reports=[report])
            client.close()
            run_volunteer(second.address, name="post-restart",
                          idle_limit=20)
            out = second.result("boot", timeout=10)
            assert out == dict(collections.Counter(corpus.split()))
        finally:
            second.close()

    def test_abandoned_lease_expires_and_is_reissued(self):
        handle = GatewayServer.in_thread(GatewayConfig(
            daemon_period_s=0.01, delay_bound_s=0.3))
        try:
            corpus = generate_corpus(6_000, seed=11)
            handle.submit_job("aband", "wordcount", corpus,
                              n_maps=1, n_reducers=1)
            client = GatewayClient(handle.address)
            ghost = client.register("ghost", flops=1e9)
            task = _poll_for_assignment(client, ghost)[0]
            client.close()
            # The ghost never reports; past the delay bound the shared
            # transitioner times the lease out and creates a fresh replica.
            time.sleep(0.5)
            run_volunteer(handle.address, name="rescuer", idle_limit=30)
            out = handle.result("aband", timeout=15)
            assert out == dict(collections.Counter(corpus.split()))
            from repro.boinc.model import ResultOutcome
            res = handle.server.core.db.results[task["result_id"]]
            assert res.outcome is ResultOutcome.NO_REPLY
        finally:
            handle.close()
