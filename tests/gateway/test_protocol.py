"""Wire protocol unit tests: schemas, checksums, error codes."""

import pytest

from repro.gateway import protocol


class TestChecksum:
    def test_format(self):
        assert protocol.checksum(b"hello") .startswith("crc32:")
        assert len(protocol.checksum(b"hello")) == len("crc32:") + 8

    def test_deterministic(self):
        assert protocol.checksum(b"abc") == protocol.checksum(b"abc")
        assert protocol.checksum(b"abc") != protocol.checksum(b"abd")

    def test_empty(self):
        assert protocol.checksum(b"") == "crc32:00000000"


class TestSchemas:
    def test_every_endpoint_schema_exists(self):
        for ep in protocol.ENDPOINTS:
            for schema in (ep.request_schema, ep.reply_schema):
                if schema is not None:
                    assert schema in protocol.SCHEMAS, ep.path

    def test_valid_work_request(self):
        payload = {"host_id": 1, "work_req_s": 1.0, "reports": [
            {"result_id": 3, "success": True, "elapsed_s": 0.5,
             "digest": "crc32:deadbeef",
             "output_files": [{"name": "j.m0.p0", "size": 10}]}]}
        assert protocol.validate("WorkRequest", payload) == []

    def test_missing_required_field(self):
        problems = protocol.validate("WorkRequest", {"host_id": 1})
        assert any("work_req_s" in p and "missing" in p for p in problems)

    def test_unknown_field_rejected(self):
        problems = protocol.validate("RegisterRequest", {
            "name": "x", "flops": 1.0, "bogus": 1})
        assert any("bogus" in p for p in problems)

    def test_type_mismatch_reported_with_path(self):
        problems = protocol.validate("WorkRequest", {
            "host_id": "one", "work_req_s": 1.0})
        assert any("host_id" in p for p in problems)

    def test_nested_list_items_validated(self):
        payload = {"host_id": 1, "work_req_s": 1.0,
                   "reports": [{"result_id": "nope"}]}
        problems = protocol.validate("WorkRequest", payload)
        assert any("result_id" in p for p in problems)
        assert any("success" in p and "missing" in p for p in problems)

    def test_bool_is_not_int(self):
        problems = protocol.validate("RegisterReply", {
            "host_id": True, "request_delay_s": 0.0})
        assert any("host_id" in p for p in problems)

    def test_nullable_kinds(self):
        task = {"result_id": 1, "wu_id": 1, "app": "wordcount",
                "job": None, "kind": None, "index": None,
                "input_files": [], "est_runtime_s": 1.0, "deadline": 2.0}
        assert protocol.validate("Task", task) == []

    def test_non_object_payload(self):
        assert protocol.validate("RegisterRequest", [1, 2]) != []


class TestErrors:
    def test_error_body_roundtrip(self):
        status, body = protocol.error_body("not_found", "gone")
        assert status == 404
        doc = protocol.loads(body)
        assert protocol.validate("Error", doc) == []
        assert doc["error"] == "not_found"

    def test_retry_after_included(self):
        status, body = protocol.error_body("unavailable", "down",
                                           retry_after_s=1.5)
        assert status == 503
        assert protocol.loads(body)["retry_after_s"] == 1.5

    def test_all_codes_have_valid_statuses(self):
        for code, (status, meaning) in protocol.ERROR_CODES.items():
            assert 400 <= status < 600, code
            assert meaning

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError):
            protocol.error_body("nope", "x")


class TestDumps:
    def test_canonical(self):
        assert protocol.dumps({"b": 1, "a": 2}) == b'{"a":2,"b":1}'

    def test_roundtrip(self):
        doc = {"x": [1, 2, {"y": None}]}
        assert protocol.loads(protocol.dumps(doc)) == doc
