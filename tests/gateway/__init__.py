"""Tests for the live gateway (repro.gateway)."""
