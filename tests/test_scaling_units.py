"""Unit tests for the scaling sweep helpers."""

import pytest

from repro.experiments import granularity_scaling, node_scaling, speedup


class TestGranularity:
    @pytest.fixture(scope="class")
    def points(self):
        # Small cluster/input so the sweep stays fast.
        return granularity_scaling(map_counts=(4, 8, 16), seed=1,
                                   n_nodes=8, input_size=160e6)

    def test_every_point_completes(self, points):
        assert len(points) == 3
        for p in points:
            assert p.total > 0
            assert p.result.job.finished

    def test_map_mean_shrinks_with_granularity(self, points):
        means = [p.map_mean for p in points]
        # Smaller chunks -> shorter per-task intervals (the dominant term).
        assert means[-1] < means[0]

    def test_x_axis_recorded(self, points):
        assert [p.x for p in points] == [4, 8, 16]


class TestSpeedupHelper:
    def test_empty(self):
        assert speedup([]) == []

    def test_relative_to_first(self):
        pts = node_scaling((5, 10), seed=2, input_size=200e6)
        s = dict(speedup(pts))
        assert s[5] == pytest.approx(1.0)
        assert s[10] > 0
