#!/usr/bin/env python
"""API-reference generator for the public ``repro`` surface.

Renders one markdown page per public module under ``docs/api/`` using
nothing but the standard library (:mod:`inspect` + :mod:`importlib`),
because the container has no sphinx/pdoc/mkdocs.  Every page is built
from live imports, so the reference cannot drift from the code without
``--check`` noticing.

Sphinx-style roles inside docstrings (``:class:`CloudSpec```,
``:mod:`repro.sim```, ``:func:`~repro.campaign.run_campaign```, ...)
are resolved against the live import graph: a role whose target cannot
be imported is a **broken cross-reference** and fails the build.  Roles
that resolve to a documented object are rendered as markdown links into
the generated pages; the rest render as plain code.

Usage::

    python docs/gen_api.py            # (re)write docs/api/*.md
    python docs/gen_api.py --check    # fail if pages are stale or refs broken
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import inspect
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
API_DIR = REPO_ROOT / "docs" / "api"

sys.path.insert(0, str(REPO_ROOT / "src"))

#: Modules that get a reference page, in index order.  One page per
#: public package facade plus the two module-level APIs the README and
#: EXPERIMENTS docs link into directly.
TARGETS = [
    ("repro", "Top-level facade: VolunteerCloud, CloudSpec, job specs."),
    ("repro.core.system", "The simulated volunteer cloud and its spec."),
    ("repro.campaign", "Parallel experiment campaigns over scenario grids."),
    ("repro.experiments", "Paper scenarios (Table 1, Fig. 4) and extensions."),
    ("repro.faults", "Deterministic fault injection and run auditing."),
    ("repro.faults.plans", "Named chaos plans (built-in + TOML loading)."),
    ("repro.obs", "Metrics, span timelines, Chrome traces, self-profiling."),
    ("repro.sim", "Discrete-event kernel: simulator, events, rng, tracer."),
    ("repro.sim.parallel",
     "LP-partitioned parallel engine with conservative windows."),
    ("repro.analysis", "Trace analysis, statistics, tables, exports."),
    ("repro.runtime", "Real MapReduce runtime used for calibration."),
    ("repro.gateway",
     "Live asyncio volunteer gateway, client, and load harness."),
]

ROLE_RE = re.compile(
    r":(?:class|func|meth|mod|attr|data|exc|obj):`([^`<>]+?)`")


def _clean_target(target: str) -> str:
    """Strip role sugar (``~`` prefix, trailing parens) off a target."""
    return target.strip().lstrip("~").removesuffix("()")


def _importable(target: str, home_module: str,
                home_obj: object = None) -> bool:
    """True when *target* resolves to a real object via import/getattr."""
    parts = target.split(".")
    # Same-class reference (``:meth:`finish``` inside a class docstring).
    if home_obj is not None:
        obj = home_obj
        for attr in parts:
            try:
                obj = getattr(obj, attr)
            except AttributeError:
                break
        else:
            return True
    for i in range(len(parts), 0, -1):
        modpath = ".".join(parts[:i])
        try:
            obj = importlib.import_module(modpath)
        except ImportError:
            continue
        for attr in parts[i:]:
            try:
                obj = getattr(obj, attr)
            except AttributeError:
                break
        else:
            return True
    # Unqualified name: resolve in the namespace the docstring lives in.
    try:
        obj = importlib.import_module(home_module)
    except ImportError:
        return False
    for attr in parts:
        try:
            obj = getattr(obj, attr)
        except AttributeError:
            return False
    return True


class RefIndex:
    """Maps documented objects to page anchors and checks role targets."""

    def __init__(self) -> None:
        """Empty index; populated while pages are rendered."""
        self.anchors: dict[str, str] = {}   # fq name -> "page.md#anchor"
        self.broken: list[str] = []

    def register(self, fqname: str, page: str, heading: str) -> None:
        """Record that *fqname* is documented under *heading* on *page*."""
        anchor = re.sub(r"[^\w\- ]", "", heading.lower()).strip()
        anchor = re.sub(r"\s+", "-", anchor)
        self.anchors[fqname] = f"{page}#{anchor}"

    def link(self, target: str, home_module: str, page: str,
             home_obj: object = None) -> str:
        """Render one role target as a link, code, or record it broken."""
        name = _clean_target(target)
        if not _importable(name, home_module, home_obj):
            self.broken.append(f"{home_module}: unresolvable reference "
                               f"`{target}`")
            return f"`{name}`"
        hits = [fq for fq in self.anchors
                if fq == name or fq.endswith("." + name)]
        if len(hits) == 1:
            dest = self.anchors[hits[0]]
            if dest.startswith(page + "#"):
                dest = dest[len(page):]
            return f"[`{name}`]({dest})"
        return f"`{name}`"


def _render_doc(doc: str | None, home_module: str, page: str,
                index: RefIndex, home_obj: object = None) -> str:
    """Substitute roles in a docstring and normalise indentation."""
    if not doc:
        return "*Undocumented.*"
    text = inspect.cleandoc(doc)
    return ROLE_RE.sub(
        lambda m: index.link(m.group(1), home_module, page, home_obj), text)


def _signature(obj) -> str:
    """Best-effort signature string ('' when introspection fails)."""
    try:
        return str(inspect.signature(obj))
    except (ValueError, TypeError):
        return ""


def _cell(text: str) -> str:
    """Escape pipes so annotations like ``str | None`` survive tables."""
    return text.replace("|", "\\|")


def _first_line(doc: str | None) -> str:
    """First docstring line, for method tables."""
    if not doc:
        return ""
    return inspect.cleandoc(doc).splitlines()[0]


def _class_members(cls) -> list[tuple[str, object, str]]:
    """Public (name, object, kind) members defined directly on *cls*."""
    out = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            out.append((name, member, "property"))
        elif isinstance(member, (staticmethod, classmethod)):
            out.append((name, member.__func__, "method"))
        elif inspect.isfunction(member):
            out.append((name, member, "method"))
    return out


def _render_class(name: str, cls, modname: str, page: str,
                  index: RefIndex) -> list[str]:
    """Markdown section for one exported class."""
    lines = [f"### {name}", ""]
    sig = _signature(cls)
    lines += ["```python", f"class {name}{sig}", "```", ""]
    lines.append(_render_doc(cls.__doc__, cls.__module__, page, index,
                             home_obj=cls))
    lines.append("")
    if dataclasses.is_dataclass(cls):
        rows = []
        for f in dataclasses.fields(cls):
            default = ""
            if f.default is not dataclasses.MISSING:
                default = f" = {f.default!r}"
            elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                default = f" = {f.default_factory.__name__}()"
            ftype = f.type if isinstance(f.type, str) else getattr(
                f.type, "__name__", str(f.type))
            rows.append(f"| `{f.name}` | {_cell(f'`{ftype}`{default}')} |")
        if rows:
            lines += ["| field | type / default |", "| --- | --- |",
                      *rows, ""]
    members = _class_members(cls)
    if members:
        lines += ["| member | summary |", "| --- | --- |"]
        for mname, member, kind in members:
            if kind == "property":
                label = f"`.{mname}`"
                doc = _first_line(member.fget.__doc__ if member.fget else "")
            else:
                label = f"`.{mname}{_signature(member) or '(...)'}`"
                doc = _first_line(member.__doc__)
            doc = ROLE_RE.sub(lambda m: f"`{_clean_target(m.group(1))}`", doc)
            lines.append(f"| {_cell(label)} | {_cell(doc)} |")
        lines.append("")
    return lines


def _render_function(name: str, fn, modname: str, page: str,
                     index: RefIndex) -> list[str]:
    """Markdown section for one exported function."""
    lines = [f"### {name}", "", "```python",
             f"{name}{_signature(fn) or '(...)'}", "```", ""]
    lines.append(_render_doc(fn.__doc__, fn.__module__, page, index))
    lines.append("")
    return lines


def _page_name(modname: str) -> str:
    """Markdown filename for a module page."""
    return modname + ".md"


def _exports(mod) -> list[str]:
    """Names a module page documents (``__all__`` or public attrs)."""
    names = getattr(mod, "__all__", None)
    if names is None:
        names = [n for n in vars(mod) if not n.startswith("_")]
    return [n for n in names if n != "__version__"]


def build_pages() -> tuple[dict[str, str], RefIndex]:
    """Render every page; returns {filename: content} and the ref index."""
    index = RefIndex()
    modules = {}
    # Pass 1: register anchors so cross-page links resolve in pass 2.
    for modname, _blurb in TARGETS:
        mod = importlib.import_module(modname)
        modules[modname] = mod
        page = _page_name(modname)
        for name in _exports(mod):
            obj = getattr(mod, name)
            heading = f"### {name}" if not inspect.ismodule(obj) else None
            if heading:
                index.register(f"{modname}.{name}", page, name)
                real_mod = getattr(obj, "__module__", None)
                if real_mod and real_mod != modname:
                    index.register(f"{real_mod}.{name}", page, name)
    # Pass 2: render.
    pages: dict[str, str] = {}
    toc = ["# `repro` API reference", "",
           "Generated by `python docs/gen_api.py` — do not edit by hand.",
           "", "| module | contents |", "| --- | --- |"]
    for modname, blurb in TARGETS:
        mod = modules[modname]
        page = _page_name(modname)
        toc.append(f"| [`{modname}`]({page}) | {blurb} |")
        lines = [f"# `{modname}`", ""]
        lines.append(_render_doc(mod.__doc__, modname, page, index))
        lines.append("")
        for name in _exports(mod):
            obj = getattr(mod, name)
            if inspect.isclass(obj):
                lines += _render_class(name, obj, modname, page, index)
            elif callable(obj):
                lines += _render_function(name, obj, modname, page, index)
            else:
                lines += [f"### {name}", "",
                          f"Constant of type `{type(obj).__name__}`.", ""]
        lines += ["---", "",
                  "*Generated by `python docs/gen_api.py` — do not edit.*",
                  ""]
        pages[page] = "\n".join(lines)
    toc.append("")
    pages["index.md"] = "\n".join(toc)
    return pages, index


def _first_diff(on_disk: str, fresh: str) -> str:
    """Locate where a committed page diverges from the fresh render.

    Returns a human-oriented one-liner — line number, the committed
    line, and what the generator now produces — so a ``--check`` failure
    says exactly *where* the page went stale instead of just which file.
    """
    old_lines = on_disk.splitlines()
    new_lines = fresh.splitlines()
    for i, (old, new) in enumerate(zip(old_lines, new_lines), start=1):
        if old != new:
            return (f"first diff at line {i}: committed "
                    f"{old[:60]!r} vs fresh {new[:60]!r}")
    if len(old_lines) != len(new_lines):
        longer = "committed" if len(old_lines) > len(new_lines) else "fresh"
        return (f"first diff at line {min(len(old_lines), len(new_lines)) + 1}: "
                f"the {longer} version has "
                f"{abs(len(old_lines) - len(new_lines))} extra line(s)")
    return "contents differ only in trailing whitespace"


def main(argv: list[str] | None = None) -> int:
    """Generate (or with ``--check`` verify) the API reference."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="verify pages on disk match a fresh render")
    args = parser.parse_args(argv)

    pages, index = build_pages()
    if index.broken:
        for msg in sorted(set(index.broken)):
            print(f"BROKEN REF: {msg}", file=sys.stderr)
        return 1

    if args.check:
        stale = []
        for fname, content in pages.items():
            path = API_DIR / fname
            if not path.exists():
                stale.append(f"missing: docs/api/{fname}")
            elif path.read_text(encoding="utf-8") != content:
                stale.append(f"stale: docs/api/{fname} "
                             f"({_first_diff(path.read_text(encoding='utf-8'), content)})")
        for fname in sorted(p.name for p in API_DIR.glob("*.md")):
            if fname not in pages:
                stale.append(f"orphaned: docs/api/{fname}")
        if stale:
            for msg in stale:
                print(f"FAIL: {msg} (re-run python docs/gen_api.py)",
                      file=sys.stderr)
            return 1
        print(f"docs/api up to date ({len(pages)} pages, "
              f"{len(index.anchors)} documented objects)")
        return 0

    API_DIR.mkdir(parents=True, exist_ok=True)
    for fname, content in pages.items():
        (API_DIR / fname).write_text(content, encoding="utf-8")
    print(f"wrote {len(pages)} pages to docs/api/ "
          f"({len(index.anchors)} documented objects)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
