#!/usr/bin/env python
"""Docstring-coverage gate for ``src/repro``.

Walks every module under ``src/repro`` with :mod:`ast` (no imports, so a
broken module still gets checked) and requires a docstring on:

- every module,
- every public class,
- every public function and method.

"Public" means the name has no leading underscore and the object is not
nested inside a private scope.  Dunder methods are exempt except
``__init__`` on public classes whose signature takes arguments beyond
``self`` (those are API surface).  ``@overload`` stubs and bodies that
are a bare ``...`` are exempt.

The gate is strict for modules and classes (every one must be
documented) and a ratchet for functions/methods: coverage must not fall
below :data:`FUNCTION_FLOOR` — now 100%, the ratchet's endpoint.  Exit
status is non-zero on violation, so CI and ``tests/test_docs.py`` can
gate on it::

    python docs/check_docstrings.py            # report + gate
    python docs/check_docstrings.py --list     # only print missing names
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: Minimum fraction of public functions/methods that must carry a
#: docstring.  Ratcheted 0.95 -> 1.00 once coverage reached 100%;
#: never lower it.
FUNCTION_FLOOR = 1.00


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _is_ellipsis_body(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    body = node.body
    if body and isinstance(body[0], ast.Expr) and isinstance(
            body[0].value, ast.Constant) and isinstance(
            body[0].value.value, str):
        body = body[1:]
    return len(body) == 1 and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant) and body[0].value.value is Ellipsis


def _is_overload(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for deco in node.decorator_list:
        name = deco.attr if isinstance(deco, ast.Attribute) else (
            deco.id if isinstance(deco, ast.Name) else None)
        if name == "overload":
            return True
    return False


def _init_needs_doc(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = node.args
    n_args = len(args.posonlyargs) + len(args.args) - 1  # minus self
    return n_args + len(args.kwonlyargs) > 0 or bool(
        args.vararg or args.kwarg)


class Tally:
    """Accumulates documentable objects and the undocumented subset."""

    def __init__(self) -> None:
        self.strict_total = 0        # modules + classes (must be 100%)
        self.strict_missing: list[str] = []
        self.func_total = 0          # functions/methods (floor-gated)
        self.func_missing: list[str] = []

    def function_coverage(self) -> float:
        """Fraction of public functions/methods with a docstring."""
        if not self.func_total:
            return 1.0
        return 1.0 - len(self.func_missing) / self.func_total


def _walk(node: ast.AST, qualname: str, tally: Tally) -> None:
    """Recurse over definitions, recording undocumented public ones."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.ClassDef):
            if not _is_public(child.name):
                continue
            name = f"{qualname}.{child.name}"
            tally.strict_total += 1
            if ast.get_docstring(child) is None:
                tally.strict_missing.append(f"class {name}")
            _walk(child, name, tally)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            is_init = (child.name == "__init__"
                       and isinstance(node, ast.ClassDef))
            if is_init and not _init_needs_doc(child):
                continue
            if not is_init and not _is_public(child.name):
                continue
            if _is_overload(child) or _is_ellipsis_body(child):
                continue
            name = f"{qualname}.{child.name}"
            tally.func_total += 1
            if ast.get_docstring(child) is None:
                tally.func_missing.append(f"def {name}")


def check_file(path: Path, tally: Tally) -> None:
    """Scan one source file into the running tally."""
    rel = path.relative_to(SRC_ROOT.parent)
    modname = ".".join(rel.with_suffix("").parts)
    if modname.endswith(".__init__"):
        modname = modname[: -len(".__init__")]
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    tally.strict_total += 1
    if ast.get_docstring(tree) is None:
        tally.strict_missing.append(f"module {modname}")
    _walk(tree, modname, tally)


def main(argv: list[str] | None = None) -> int:
    """Run the gate over ``src/repro``; return a process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--list", action="store_true",
                        help="print only the missing names")
    args = parser.parse_args(argv)

    tally = Tally()
    for path in sorted(SRC_ROOT.rglob("*.py")):
        check_file(path, tally)

    if args.list:
        for name in tally.strict_missing + tally.func_missing:
            print(name)
    else:
        strict_ok = tally.strict_total - len(tally.strict_missing)
        print(f"modules/classes documented: {strict_ok}/"
              f"{tally.strict_total} (required: all)")
        func_cov = tally.function_coverage()
        func_ok = tally.func_total - len(tally.func_missing)
        print(f"functions/methods documented: {func_ok}/{tally.func_total} "
              f"({100 * func_cov:.1f}%, floor {100 * FUNCTION_FLOOR:.0f}%)")
        for name in tally.strict_missing:
            print(f"  MISSING {name}")

    failures: list[str] = []
    if tally.strict_missing:
        failures.append(f"{len(tally.strict_missing)} public modules/classes "
                        f"lack docstrings")
    if tally.function_coverage() < FUNCTION_FLOOR:
        failures.append(
            f"function docstring coverage "
            f"{100 * tally.function_coverage():.1f}% is below the "
            f"{100 * FUNCTION_FLOOR:.0f}% floor")
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
