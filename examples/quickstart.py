#!/usr/bin/env python3
"""Quickstart: run one MapReduce word-count job on a simulated volunteer cloud.

Builds the paper's 20-node Emulab-style deployment twice — once with
original BOINC clients (all data through the project server) and once with
BOINC-MR clients (inter-client transfers) — runs the same 1 GB word-count
job on each, and prints the paper's Table I metrics side by side.

Run:  python examples/quickstart.py
"""

from repro.analysis import job_metrics
from repro.core import BoincMRConfig, CloudSpec, MapReduceJobSpec, VolunteerCloud


def run(label: str, mr: bool) -> None:
    if mr:
        mr_config = BoincMRConfig()  # hash-only reporting, peer transfers
    else:
        mr_config = BoincMRConfig(upload_map_outputs=True,
                                  reduce_from_peers=False)
    cloud = VolunteerCloud.from_spec(CloudSpec(seed=1, mr_config=mr_config))
    cloud.add_volunteers(20, mr=mr)

    job = cloud.run_job(MapReduceJobSpec(
        name="wordcount", n_maps=20, n_reducers=5, input_size=1e9))

    m = job_metrics(cloud.tracer, "wordcount")
    print(f"\n== {label} ==")
    print(f"  map phase:    mean {m.map_stats.mean:6.1f}s over "
          f"{m.map_stats.n_tasks} results "
          f"[{m.map_stats.mean_discard_slowest:.1f}s without straggler "
          f"{m.map_stats.slowest_host}]")
    print(f"  reduce phase: mean {m.reduce_stats.mean:6.1f}s over "
          f"{m.reduce_stats.n_tasks} results")
    print(f"  total makespan: {m.total:7.1f}s "
          f"(map->reduce dead time {m.transition_gap:.1f}s)")
    print(f"  server served {cloud.server.dataserver.bytes_served / 1e9:.2f} GB, "
          f"received {cloud.server.dataserver.bytes_received / 1e9:.2f} GB")
    peer_bytes = sum(c.peer_store.bytes_served for c in cloud.clients
                     if getattr(c, "peer_store", None) is not None)
    print(f"  inter-client transfers: {peer_bytes / 1e9:.2f} GB")


def main() -> None:
    print("BOINC-MR quickstart: 20 volunteers, 1 GB word count, "
          "20 maps / 5 reducers, replication 2")
    run("Original BOINC (all data via project server)", mr=False)
    run("BOINC-MR (inter-client map-output transfers)", mr=True)


if __name__ == "__main__":
    main()
