#!/usr/bin/env python3
"""Run a multi-stage MapReduce workflow on the volunteer cloud.

Section II: MapReduce is "a gateway to allow other paradigms or more
complex applications" — "many applications can be broken down into
sequences of MapReduce jobs".  This example runs a three-stage text
analytics pipeline on BOINC-MR volunteers:

1. ``filter``  — distributed grep over the 1 GB corpus (map-heavy, tiny
   intermediate data);
2. ``index``   — inverted-index construction over the matches;
3. ``count``   — word count over the index terms.

Each stage's reduce outputs feed the next stage; the JobTracker creates
the next stage's map workunits only when the previous stage validates.

Run:  python examples/workflow_pipeline.py
"""

from repro.core import (
    GREP,
    INVERTED_INDEX,
    WORD_COUNT,
    CloudSpec,
    VolunteerCloud,
    WorkflowStage,
    pipeline,
)


def main() -> None:
    cloud = VolunteerCloud.from_spec(CloudSpec(seed=11))
    cloud.add_volunteers(16, mr=True)

    wf = pipeline(
        cloud, "analytics", 1e9,
        WorkflowStage("filter", n_maps=16, n_reducers=2, cost=GREP,
                      app_name="grep"),
        WorkflowStage("index", n_maps=8, n_reducers=4, cost=INVERTED_INDEX,
                      app_name="invindex"),
        WorkflowStage("count", n_maps=8, n_reducers=2, cost=WORD_COUNT,
                      app_name="wordcount"),
    )
    jobs = wf.run()

    print("three-stage analytics workflow on 16 BOINC-MR volunteers\n")
    for job, stage_makespan in zip(jobs, wf.stage_makespans()):
        spec = job.spec
        print(f"  {spec.name:18s} {spec.n_maps:3d} maps x "
              f"{spec.input_size / 1e6:7.1f} MB input -> "
              f"{spec.n_reducers} reducers   {stage_makespan:7.1f}s")
    print(f"\n  end-to-end makespan: {wf.makespan():.1f}s")
    idle = wf.makespan() - sum(wf.stage_makespans())
    print(f"  inter-stage dead time (validation + reduce-WU creation + "
          f"client backoff): {idle:.1f}s")


if __name__ == "__main__":
    main()
