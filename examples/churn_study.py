#!/usr/bin/env python3
"""BOINC-MR on volunteers that actually behave like volunteers.

The paper's evaluation ran on a dedicated cluster; this example turns on
the two-state availability model (exponentially distributed ON/OFF
periods plus permanent departures) and shows the safety nets working:
deadline timeouts spawn replacement replicas, and reducers that lose a
mapper mid-download retry and then fall back to the server copy.

Run:  python examples/churn_study.py
"""

from repro.experiments import run_churn, run_scenario
from repro.experiments.scenario import Scenario


def main() -> None:
    print("baseline: stable 20-node BOINC-MR cluster ...")
    stable = run_scenario(Scenario(name="churn", n_nodes=20, n_maps=20,
                                   n_reducers=5, mr_clients=True, seed=3))
    print(f"  total {stable.metrics.total:8.1f}s\n")

    for mean_off, departure in [(300.0, 0.0), (600.0, 0.05), (900.0, 0.15)]:
        out = run_churn(seed=3, mean_on_s=1800.0, mean_off_s=mean_off,
                        departure_prob=departure)
        slowdown = out.total / stable.metrics.total
        print(f"churn: OFF~{mean_off / 60:.0f}min, "
              f"{departure * 100:.0f}% departures")
        print(f"  total {out.total:8.1f}s (x{slowdown:.2f} vs stable)")
        print(f"  {out.transitions} availability transitions, "
              f"{out.departed} hosts gone for good")
        print(f"  {out.replacement_results} replacement results created, "
              f"{out.server_fallbacks} reduce inputs recovered from the "
              f"server, {out.peer_fetches} from peers\n")

    print("the job always finishes — replication, deadlines, and the "
          "retry-then-server\nfallback absorb the volatility the paper "
          "designed for but never measured.")


if __name__ == "__main__":
    main()
