#!/usr/bin/env python3
"""Regenerate Fig. 4: the map-phase backoff straggler, as an ASCII Gantt.

Runs the 15-node / 15-map-WU scenario until a seed exhibits the paper's
pathology (a node that finished and uploaded its map output but could not
report it because it sat in an exponential-backoff window), then prints
the per-result timeline and the delay statistics.

Run:  python examples/fig4_timeline.py
"""

from repro.experiments import run_fig4


def main() -> None:
    fig4 = run_fig4(base_seed=1, min_straggler_lag=120.0)
    print(fig4.render(width=70))
    print()
    lags = sorted(((t.host, t.report_lag) for t in fig4.timelines
                   if t.report_lag is not None),
                  key=lambda hl: -hl[1])
    print("output-ready -> reported lags (top 6):")
    for host, lag in lags[:6]:
        marker = "  <-- the straggler" if host == fig4.straggler_host else ""
        print(f"  {host}: {lag:6.1f}s{marker}")
    last_map = max(t.reported_at for t in fig4.timelines)
    print(f"\nlast map report at t={last_map:.0f}s; first reduce assignment "
          f"at t={fig4.reduce_start:.0f}s")
    print("the reduce phase for the whole cluster waited on one client's "
          "backoff window, exactly as in the paper's Fig. 4")


if __name__ == "__main__":
    main()
