#!/usr/bin/env python3
"""Quantify the Section III.D NAT-traversal ladder on an Internet population.

The paper's prototype assumed reachable peers; over the real Internet most
volunteers sit behind NATs.  This example runs BOINC-MR over a 2011-like
NAT mix under four traversal configurations and shows how each rung of the
ladder (direct -> connection reversal -> hole punching -> relay) recovers
inter-client transfers that would otherwise fall back to the server.

Run:  python examples/nat_traversal_study.py
"""

from repro.analysis import render_table
from repro.experiments import run_ladder_study


def main() -> None:
    outcomes = run_ladder_study(seed=1)
    rows = []
    for o in outcomes:
        methods = ", ".join(f"{k}={v}" for k, v in sorted(o.method_counts.items()))
        rows.append([o.label, f"{o.total:.0f}s", o.peer_fetches,
                     o.server_fallbacks, methods])
    print(render_table(
        ["ladder", "makespan", "peer fetches", "server fallbacks",
         "connection methods"],
        rows,
        title="BOINC-MR over 20 NATed volunteers (1 GB word count)"))
    print("\neach added rung recovers more inter-client transfers; the full "
          "ladder\n(as in Skype-era P2P systems) eliminates server fallbacks "
          "entirely.")


if __name__ == "__main__":
    main()
