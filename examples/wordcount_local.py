#!/usr/bin/env python3
"""Run the *real* word-count application on real bytes (proof of concept).

Generates a Zipf-distributed text corpus, splits it into chunks exactly as
the BOINC-MR server splits its 1 GB input, runs the actual map ->
hash-partition -> reduce pipeline (serially and thread-parallel), verifies
the result against ``collections.Counter``, and demonstrates the
replication/quorum idea on real outputs: two independent executions of the
same chunk produce byte-identical partitions (what BOINC's validator
compares), while a corrupted execution does not.

Run:  python examples/wordcount_local.py [corpus_bytes]
"""

import collections
import pickle
import sys
import time

from repro.runtime import LocalRunner
from repro.runtime.apps import WordCount
from repro.workloads import generate_corpus


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000_000
    print(f"generating {size / 1e6:.1f} MB Zipf corpus ...")
    corpus = generate_corpus(size, vocabulary_size=5000, seed=42)

    runner = LocalRunner(WordCount(), n_maps=16, n_reducers=4)
    t0 = time.perf_counter()
    report = runner.run(corpus, parallel=True)
    elapsed = time.perf_counter() - t0

    truth = collections.Counter(corpus.split())
    assert report.output == dict(truth), "MapReduce result != ground truth"

    total_words = sum(truth.values())
    print(f"counted {total_words} words ({len(truth)} distinct) "
          f"in {elapsed:.2f}s -> {len(corpus) / elapsed / 1e6:.1f} MB/s")
    print(f"intermediate data: {report.intermediate_bytes / 1e3:.1f} kB across "
          f"{len(report.partition_bytes)} (mapper, reducer) partition files")
    top = truth.most_common(5)
    print("top words:", ", ".join(f"{w.decode()}={c}" for w, c in top))

    # --- replication & quorum on real outputs -----------------------------
    chunk = corpus[: len(corpus) // 16]
    _r1, replica_a = runner.run_map_task(0, chunk)
    _r2, replica_b = runner.run_map_task(0, chunk)
    assert all(replica_a[r] == replica_b[r] for r in replica_a), \
        "independent replicas must be byte-identical"
    print("replication check: two executions of the same map task are "
          "byte-identical (quorum of 2 would validate)")

    corrupt = dict(replica_a)
    pairs = pickle.loads(corrupt[0])
    if pairs:
        pairs[0] = (pairs[0][0], pairs[0][1] + 1)  # byzantine +1
    corrupt[0] = pickle.dumps(pairs)
    assert corrupt[0] != replica_b[0]
    print("byzantine check: a tampered replica no longer matches "
          "(quorum rejects it)")


if __name__ == "__main__":
    main()
