#!/usr/bin/env python3
"""Regenerate the paper's Table I and print it next to the published values.

Runs all nine rows (eight vanilla-BOINC configurations plus the BOINC-MR
row) of the word-count makespan experiment.  Expect ~10-30 s of wall time.

Run:  python examples/table1_repro.py [seed]
"""

import sys
import time

from repro.experiments import PAPER_TABLE1, run_table1
from repro.experiments.table1 import render


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    print(f"running {len(PAPER_TABLE1)} scenarios (seed={seed}) ...")
    t0 = time.perf_counter()
    records = run_table1(PAPER_TABLE1, seed=seed)
    print(f"done in {time.perf_counter() - t0:.1f}s\n")
    print(render(records))
    print("\ncells are `mean [slowest-node-discarded]` seconds, as in the "
          "paper;\nabsolute values are calibrated, relational shape is the "
          "reproduction target.")


if __name__ == "__main__":
    main()
