"""Microbenchmarks of the executable MapReduce runtime.

These are true repeated-timing benchmarks (the only ones here — the
simulation benches run once).  They document the real word-count
throughput of the local engine, the combiner's intermediate-data savings,
and splitter cost — the numbers behind the calibrated cost models.
"""

import collections

import pytest

from repro.runtime import FnApp, LocalRunner, split_text
from repro.runtime.apps import DistributedGrep, WordCount
from repro.workloads import generate_corpus

CORPUS = generate_corpus(400_000, seed=7)


def test_bench_wordcount_run(benchmark):
    runner = LocalRunner(WordCount(), n_maps=8, n_reducers=4)
    report = benchmark(runner.run, CORPUS)
    assert report.output == dict(collections.Counter(CORPUS.split()))
    throughput = len(CORPUS) / benchmark.stats["mean"]
    print(f"\nreal word-count throughput: {throughput / 1e6:.2f} MB/s "
          f"(simulated pc3001 model: 0.60 MB/s)")


def test_bench_wordcount_map_task(benchmark):
    runner = LocalRunner(WordCount(), n_maps=1, n_reducers=4)
    report, blobs = benchmark(runner.run_map_task, 0, CORPUS)
    assert report.records_in == CORPUS.count(b"\n")
    assert len(blobs) == 4


def test_bench_grep_run(benchmark):
    runner = LocalRunner(DistributedGrep(rb"zu"), n_maps=8, n_reducers=2)
    benchmark(runner.run, CORPUS)


def test_bench_splitter(benchmark):
    chunks = benchmark(split_text, CORPUS, 32)
    assert b"".join(chunks) == CORPUS


def test_combiner_saves_intermediate_bytes():
    plain = FnApp(lambda k, v: ((w, 1) for w in v.split()),
                  lambda k, vs: [sum(vs)], name="wc_nocombine")
    with_comb = LocalRunner(WordCount(), 8, 4).run(CORPUS)
    without = LocalRunner(plain, 8, 4).run(CORPUS)
    saving = 1 - with_comb.intermediate_bytes / without.intermediate_bytes
    print(f"\ncombiner intermediate-data saving: {saving * 100:.1f}% "
          f"({without.intermediate_bytes} -> {with_comb.intermediate_bytes} bytes)")
    assert saving > 0.5  # Zipf corpus: most map outputs collapse locally
