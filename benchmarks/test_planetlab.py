"""Benchmark: the LAN-vs-Internet deployment study (PlanetLab future work).

The paper's evaluation ran on a symmetric 100 Mbit LAN, where inter-client
transfers trivially beat the shared server link.  On 2011 consumer
broadband the picture inverts: reducers must pull intermediate data
through mappers' thin (1-5 Mbit) uplinks, while a university server
pushes at 1 Gbit.  This bench quantifies the crossover — the deployment
reality behind the paper's "vast improvements in network infrastructure
... in the last mile" hedge.
"""

import pytest

from repro.experiments.planetlab import run_lan_vs_internet


@pytest.fixture(scope="module")
def deployments():
    return run_lan_vs_internet(seed=1)


def test_lan_vs_internet_table(benchmark, deployments):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("LAN (Emulab-like) vs Internet (ADSL/cable + NATs), 1 GB word count")
    for label, d in deployments.items():
        print(f"  {label:18s} total {d.total:8.0f}s  "
              f"map {d.metrics.map_stats.mean:6.0f}s  "
              f"reduce {d.metrics.reduce_stats.mean:6.0f}s  "
              f"server {d.server_gb_served:.2f} GB  peer {d.peer_gb:.2f} GB")


def test_all_deployments_complete(deployments):
    for d in deployments.values():
        assert d.total > 0


def test_lan_favours_inter_client(deployments):
    """On the paper's testbed, BOINC-MR's reduce is faster (Table I)."""
    assert (deployments["lan_mr"].metrics.reduce_stats.mean
            < deployments["lan_vanilla"].metrics.reduce_stats.mean)


def test_internet_inverts_the_advantage(deployments):
    """On thin consumer uplinks, pulling intermediate data from peers is
    slower than using the fat server path — the crossover the paper's
    last-mile assumption glosses over."""
    assert (deployments["planetlab_mr"].metrics.reduce_stats.mean
            > deployments["planetlab_vanilla"].metrics.reduce_stats.mean)


def test_mr_always_halves_server_traffic(deployments):
    """Whatever the makespan, BOINC-MR's point stands: the server moves
    half the bytes (map outputs travel peer-to-peer)."""
    for env in ("lan", "planetlab"):
        assert (deployments[f"{env}_mr"].server_gb_served
                < 0.6 * deployments[f"{env}_vanilla"].server_gb_served)
        assert deployments[f"{env}_mr"].peer_gb > 0


def test_internet_slower_than_lan(deployments):
    assert deployments["planetlab_vanilla"].total > \
        deployments["lan_vanilla"].total
