"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
*prints* the rows/series the paper reports (run with ``-s`` to see them),
then asserts the relational shape — who wins, by roughly what factor —
rather than absolute seconds (our substrate is a simulator, not the
authors' Emulab).

Simulation benchmarks run exactly once per session (they are deterministic
and individually expensive); ``benchmark.pedantic`` with one round records
their wall-clock cost without re-running the simulation dozens of times.
"""

from __future__ import annotations

import pytest


def once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def run_once():
    return once
