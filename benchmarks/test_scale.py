"""Benchmark: simulator throughput at 100/500/2,000 volunteers.

The paper's testbed stops at ~40 Emulab nodes; real volunteer platforms
run orders of magnitude more hosts.  This harness measures what bounds
*the simulator* at that scale: events/sec with the incremental
(component-partitioned) max-min allocator versus the reference
full-recompute allocator, on an internet-style deployment (1 Gbit
project server, ADSL volunteers, one concurrent 250 MB word-count job
per 200 volunteers — see ``repro.experiments.build_scale_cloud``).

Emits ``BENCH_scale.json`` with events/sec, wall-clock, and peak event
queue depth per (size, allocator) point.  Absolute events/sec is
machine-dependent; the *speedup ratio* between allocators is not, and
``benchmarks/check_scale_regression.py`` gates CI on both (ratios
strictly, absolute throughput against the checked-in baseline).

Run directly (``python benchmarks/test_scale.py``) or under pytest.
Environment knobs:

- ``SCALE_SIZES``   comma-separated node counts (default ``100,500,2000``)
- ``SCALE_OUT``     output path (default ``BENCH_scale.json``)
"""

from __future__ import annotations

import json
import os
import sys

from repro.experiments import SCALE_NODE_COUNTS, scale_out

#: The two strategies under comparison; "full" is the reference.
ALLOCATORS = ("incremental", "full")


def _sizes() -> tuple[int, ...]:
    raw = os.environ.get("SCALE_SIZES", "")
    if not raw:
        return SCALE_NODE_COUNTS
    return tuple(int(tok) for tok in raw.split(",") if tok.strip())


def run_suite(sizes: tuple[int, ...] | None = None,
              seed: int = 1) -> dict:
    """Run every (size, allocator) point and assemble the report."""
    sizes = sizes or _sizes()
    report: dict = {
        "workload": ("wordcount, 50 maps x 50 reducers x 250 MB per job, "
                     "1 job per 200 volunteers; 1 Gbit server, ADSL "
                     "volunteers, BOINC-MR clients"),
        "seed": seed,
        "sizes": [],
    }
    for n in sizes:
        entry: dict = {"n_nodes": n}
        for allocator in ALLOCATORS:
            point = scale_out(n, seed=seed, allocator=allocator)
            entry[allocator] = {
                "events": point.events,
                "wall_s": round(point.wall_s, 3),
                "events_per_s": round(point.events_per_s, 1),
                "makespan_s": round(point.makespan_s, 1),
                "peak_queue_depth": point.peak_queue_depth,
                "n_jobs": point.n_jobs,
            }
            print(f"  n={n:5d} {allocator:11s} "
                  f"{point.events_per_s:9.0f} events/s  "
                  f"wall {point.wall_s:7.2f}s  "
                  f"peak queue {point.peak_queue_depth}", flush=True)
        entry["speedup_events_per_s"] = round(
            entry["incremental"]["events_per_s"]
            / entry["full"]["events_per_s"], 2)
        report["sizes"].append(entry)
    return report


def write_report(report: dict, path: str | None = None) -> str:
    path = path or os.environ.get("SCALE_OUT", "BENCH_scale.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def test_scale_benchmark():
    """Full suite: run, emit BENCH_scale.json, assert the scale story."""
    report = run_suite()
    path = write_report(report)
    print(f"\nwrote {path}")
    by_size = {e["n_nodes"]: e for e in report["sizes"]}
    largest = max(by_size)
    # The headline claim: at the largest size the incremental allocator
    # delivers a multiple of the full allocator's throughput.  5x is the
    # measured margin at 2,000 volunteers; assert with headroom so a slow
    # or noisy runner does not flake the build.
    floor = 3.0 if largest >= 2000 else 1.2
    assert by_size[largest]["speedup_events_per_s"] >= floor, report
    # Both allocators simulate the same system: makespans agree closely
    # (exact equality is not guaranteed — epsilon-simultaneous completions
    # may resolve in a different order across strategies).
    for entry in report["sizes"]:
        inc, full = entry["incremental"], entry["full"]
        assert abs(inc["makespan_s"] - full["makespan_s"]) \
            <= 0.05 * full["makespan_s"] + 1.0, entry


def main() -> int:
    report = run_suite()
    path = write_report(report)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
