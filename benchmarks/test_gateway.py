#!/usr/bin/env python3
"""Gateway load benchmark: a live 500-client replay -> BENCH_gateway.json.

Boots an in-process gateway (unless ``GATEWAY_ADDRESS`` points at an
external ``repro serve``), replays the compressed availability schedules
of ``GATEWAY_CLIENTS`` simulated volunteers (default 500) through the
async load harness, and writes the ``BENCH_gateway.json`` latency/
correctness report that ``check_scale_regression.py --kind gateway``
gates against ``benchmarks/BENCH_gateway_baseline.json``.

Environment knobs (all optional):

- ``GATEWAY_ADDRESS``  — load an already-running gateway instead of
  self-hosting;
- ``GATEWAY_CLIENTS``  — fleet size (default 500);
- ``GATEWAY_DURATION`` — replay window in seconds (default 8).
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.gateway import LoadConfig, run_loadgen, write_report  # noqa: E402


def main() -> int:
    """Run the replay, write BENCH_gateway.json, return an exit status."""
    config = LoadConfig(
        n_clients=int(os.environ.get("GATEWAY_CLIENTS", "500")),
        duration_s=float(os.environ.get("GATEWAY_DURATION", "8.0")),
    )
    report = run_loadgen(address=os.environ.get("GATEWAY_ADDRESS"),
                         config=config, echo=print)
    out = os.environ.get("GATEWAY_OUT", "BENCH_gateway.json")
    write_report(report, out)
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    print(f"wrote {out}")
    if not report.clean:
        print("gateway benchmark: correctness gates FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
