"""Benchmark: speculative execution vs the paper's straggler pathology.

The paper's Fig. 4 straggler and its "Minimizing Impact of Slower Nodes"
discussion motivate backup tasks (Hadoop's classic mitigation, absent from
BOINC).  This bench runs the word-count job with one genuinely slow node
(the server's speed estimate is 20x optimistic) and with a backoff-trapped
cluster, showing how speculative replicas bound the damage.
"""

import pytest

from repro.boinc import ClientConfig, ServerConfig
from repro.core import CloudSpec, JobPhase, MapReduceJobSpec, VolunteerCloud


def run_with_slow_node(speculative: bool, seed: int = 1):
    cloud = VolunteerCloud.from_spec(CloudSpec(
        seed=seed, server_config=ServerConfig(
            speculative_execution=speculative, speculative_factor=3.0,
            speculative_min_elapsed_s=120.0)))
    cloud.add_volunteers(19, mr=True)
    cloud.add_volunteer("slowpoke", mr=True,
                        config=ClientConfig(speed_factor=0.05))
    job = cloud.run_job(MapReduceJobSpec(
        "spec", n_maps=20, n_reducers=5, input_size=1e9),
        timeout=96 * 3600)
    return cloud, job


@pytest.fixture(scope="module")
def comparison():
    return run_with_slow_node(False), run_with_slow_node(True)


def test_speculation_summary(benchmark, comparison):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    (c0, job0), (c1, job1) = comparison
    backups = c1.tracer.select("transitioner.speculative")
    print()
    print("One 20x-slow node in a 20-node cluster (est unknown to server)")
    print(f"  no speculation: total {job0.makespan():8.0f}s")
    print(f"  speculation:    total {job1.makespan():8.0f}s "
          f"({len(backups)} backup replicas, "
          f"laggard hosts: {sorted({r['host'] for r in backups})})")


def test_speculation_rescues_makespan(comparison):
    (_c0, job0), (_c1, job1) = comparison
    assert job1.makespan() < 0.7 * job0.makespan()


def test_backups_cover_the_slow_node(comparison):
    """Backups fire for the compute straggler AND for healthy hosts whose
    finished results sit unreported in backoff windows — the same
    mechanism remedies both of the paper's delay sources."""
    (_c0, _job0), (c1, _job1) = comparison
    backups = c1.tracer.select("transitioner.speculative")
    assert backups
    assert any(r["host"] == "slowpoke" for r in backups)
    # Bounded: never more than one backup per result that existed.
    assert len(backups) <= len(c1.server.db.results)


def test_both_complete(comparison):
    (_c0, job0), (_c1, job1) = comparison
    assert job0.phase is JobPhase.DONE and job1.phase is JobPhase.DONE
