"""Benchmark: parallel-engine throughput and sequential equivalence.

Runs the scale workload (``repro.experiments.build_scale_cloud``: 1 Gbit
project server, ADSL volunteers, one concurrent 250 MB word-count job per
200 volunteers) on the sequential engine and on the LP-partitioned
parallel engine at 1/2/4/8 logical processes, measuring events/sec.

Every parallel point is also an equivalence assertion at scale: the
engines must agree *exactly* on dispatched event count, simulated
makespan, and peak queue depth (byte-identical traces are asserted by the
tier-1 suite on small scenarios; these scalars are the cheap full-scale
proxy — any divergence in execution order would shift all three).

Emits ``BENCH_parallel.json``; ``benchmarks/check_scale_regression.py
--kind parallel`` gates CI against the checked-in baseline.  The >= 2x
multi-core speedup criterion is enforced only when the runner has 4+
CPUs — on fewer cores the gate logs a skip reason instead, since a
GIL-bound single-core host cannot express cross-LP parallelism (the
windows/cross-delivery structure is still measured and asserted).

Run directly (``python benchmarks/test_parallel.py``) or under pytest.
Environment knobs:

- ``PARALLEL_SIZES``  comma-separated node counts (default ``2000,10000``)
- ``PARALLEL_OUT``    output path (default ``BENCH_parallel.json``)
"""

from __future__ import annotations

import json
import os
import sys

from repro.experiments import scale_out

#: Logical-process counts swept per size (1 = sharded-sequential floor).
LP_COUNTS = (1, 2, 4, 8)

#: The 1-LP parallel engine must stay within this slowdown of the
#: sequential engine — the conservative-window machinery is bookkeeping,
#: not a second simulator.
OVERHEAD_FLOOR = 0.30


def _sizes() -> tuple[int, ...]:
    raw = os.environ.get("PARALLEL_SIZES", "")
    if not raw:
        return (2000, 10000)
    return tuple(int(tok) for tok in raw.split(",") if tok.strip())


def run_suite(sizes: tuple[int, ...] | None = None, seed: int = 1) -> dict:
    """Run sequential + every LP count per size; assemble the report."""
    sizes = sizes or _sizes()
    report: dict = {
        "workload": ("wordcount, 50 maps x 50 reducers x 250 MB per job, "
                     "1 job per 200 volunteers; 1 Gbit server, ADSL "
                     "volunteers, BOINC-MR clients"),
        "seed": seed,
        "cpu_count": os.cpu_count() or 1,
        "sizes": [],
    }
    for n in sizes:
        seq = scale_out(n, seed=seed)
        entry: dict = {
            "n_nodes": n,
            "sequential": {
                "events": seq.events,
                "wall_s": round(seq.wall_s, 3),
                "events_per_s": round(seq.events_per_s, 1),
                "makespan_s": round(seq.makespan_s, 1),
                "peak_queue_depth": seq.peak_queue_depth,
                "n_jobs": seq.n_jobs,
            },
        }
        print(f"  n={n:5d} sequential   {seq.events_per_s:9.0f} events/s  "
              f"wall {seq.wall_s:7.2f}s", flush=True)
        lps: dict = {}
        equivalent = True
        best = 0.0
        for workers in LP_COUNTS:
            p = scale_out(n, seed=seed, engine="parallel",
                          sim_workers=workers)
            matches = (p.events == seq.events
                       and p.makespan_s == seq.makespan_s
                       and p.peak_queue_depth == seq.peak_queue_depth)
            equivalent = equivalent and matches
            best = max(best, p.events_per_s)
            lps[str(workers)] = {
                "events": p.events,
                "wall_s": round(p.wall_s, 3),
                "events_per_s": round(p.events_per_s, 1),
                "windows": p.windows,
                "cross_deliveries": p.cross_deliveries,
                "matches_sequential": matches,
            }
            print(f"  n={n:5d} parallel x{workers:<2d} "
                  f"{p.events_per_s:9.0f} events/s  "
                  f"wall {p.wall_s:7.2f}s  windows {p.windows}  "
                  f"cross {p.cross_deliveries}  "
                  f"{'ok' if matches else 'DIVERGED'}", flush=True)
        entry["lp"] = lps
        entry["equivalent"] = equivalent
        entry["best_parallel_speedup"] = round(best / seq.events_per_s, 2)
        report["sizes"].append(entry)
    return report


def write_report(report: dict, path: str | None = None) -> str:
    """Write *report* as pretty JSON; returns the path used."""
    path = path or os.environ.get("PARALLEL_OUT", "BENCH_parallel.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def test_parallel_benchmark():
    """Run, emit BENCH_parallel.json, and assert equivalence + overheads."""
    report = run_suite()
    path = write_report(report)
    print(f"\nwrote {path}")
    ncpu = report["cpu_count"]
    for entry in report["sizes"]:
        # The oracle: every LP count reproduced the sequential run exactly.
        assert entry["equivalent"], entry
        # Window machinery overhead is bounded: 1 LP stays within reach of
        # the sequential engine rather than halving throughput.
        ratio = (entry["lp"]["1"]["events_per_s"]
                 / entry["sequential"]["events_per_s"])
        assert ratio >= OVERHEAD_FLOOR, entry
        # Multi-core speedup criterion — only meaningful with 4+ cores.
        four_plus = max(v["events_per_s"] for w, v in entry["lp"].items()
                        if int(w) >= 4)
        if ncpu >= 4:
            assert four_plus >= 2.0 * entry["sequential"]["events_per_s"], \
                entry
        else:
            print(f"  n={entry['n_nodes']}: skipping >=2x multi-core gate "
                  f"(runner has {ncpu} CPU(s); cross-LP execution is "
                  f"GIL-serialized on this host)")


def main() -> int:
    """Command-line entry point: run the suite and write the report."""
    report = run_suite()
    path = write_report(report)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
