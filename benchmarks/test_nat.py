"""Benchmark: the Section III.D NAT-traversal ladder, quantified.

The paper sketches the ladder (direct -> connection reversal -> hole
punching -> relay) as future work; this bench runs BOINC-MR over an
Internet-like NAT population under each configuration and prints, per
rung: how transfers connected, how many fell back to the server, and the
job makespan.
"""

import pytest

from repro.experiments import run_ladder_study


@pytest.fixture(scope="module")
def outcomes():
    return run_ladder_study(seed=1)


def test_ladder_table(benchmark, outcomes):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("NAT traversal ladder (20 BOINC-MR nodes, Internet NAT mix)")
    for o in outcomes:
        print(f"  {o.label:16s} total {o.total:7.1f}s  peer {o.peer_fetches:4d}"
              f"  server-fallback {o.server_fallbacks:4d}  {o.method_counts}")


def test_each_rung_recovers_more_peer_transfers(outcomes):
    peer = [o.peer_fetches for o in outcomes]
    assert peer == sorted(peer), "ladder rungs must monotonically help"
    assert peer[-1] > peer[0]


def test_full_ladder_needs_no_server_fallback(outcomes):
    full = next(o for o in outcomes if o.label == "full_ladder")
    assert full.server_fallbacks == 0


def test_direct_only_relies_on_server(outcomes):
    direct = next(o for o in outcomes if o.label == "direct_only")
    assert direct.server_fallbacks > direct.peer_fetches


def test_relay_only_appears_in_full_ladder(outcomes):
    for o in outcomes:
        if o.label != "full_ladder":
            assert o.method_counts.get("relay", 0) == 0


def test_jobs_complete_under_every_ladder(outcomes):
    for o in outcomes:
        assert o.result.job.finished
        assert o.total > 0
