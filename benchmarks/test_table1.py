"""Benchmark: regenerate Table I (word-count makespan grid).

Prints the full reproduction table next to the published values and
asserts the paper's relational claims:

1. totals land in the paper's band (roughly 1000-1800 s for a 1 GB job);
2. per-phase means sit in the published few-hundred-second range;
3. discarding the slowest node never increases a mean (and is how the
   paper explains its bracketed values);
4. the BOINC-MR row has the fastest reduce phase of its cluster size
   (inter-client transfers bypass the server) while its total stays
   comparable to vanilla BOINC — the paper's headline observation;
5. the map phase dominates the job ("the map step took too much of a
   share of the whole job").
"""

import pytest

from repro.experiments import PAPER_TABLE1, run_table1
from repro.experiments.table1 import render


@pytest.fixture(scope="module")
def records():
    return run_table1(PAPER_TABLE1, seed=1)


def test_table1_full_grid(benchmark, records):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(render(records))


def test_totals_in_paper_band(records):
    for rec in records:
        total, _disc = rec.measured_total
        assert 600 < total < 2600, rec.row.label


def test_phase_means_in_paper_range(records):
    for rec in records:
        for mean, _d in (rec.measured_map, rec.measured_reduce):
            assert 100 < mean < 1100, rec.row.label


def test_discarded_never_exceeds_mean(records):
    for rec in records:
        assert rec.measured_map[1] <= rec.measured_map[0] + 1e-9
        assert rec.measured_reduce[1] <= rec.measured_reduce[0] + 1e-9
        assert rec.measured_total[1] <= rec.measured_total[0] + 1e-9


def test_boinc_mr_reduce_fastest_at_same_size(records):
    mr = next(r for r in records if r.row.mr)
    vanilla = next(r for r in records
                   if not r.row.mr and r.row.nodes == mr.row.nodes
                   and r.row.n_maps == mr.row.n_maps)
    assert mr.measured_reduce[0] < vanilla.measured_reduce[0]


def test_boinc_mr_total_comparable(records):
    """Paper: "we can see it can provide the same level of performance"."""
    mr = next(r for r in records if r.row.mr)
    vanilla = next(r for r in records
                   if not r.row.mr and r.row.nodes == mr.row.nodes
                   and r.row.n_maps == mr.row.n_maps)
    ratio = mr.measured_total[0] / vanilla.measured_total[0]
    assert 0.6 < ratio < 1.25


def test_map_phase_dominates(records):
    """Map work (2x results, all input bytes) outweighs the reduce phase."""
    for rec in records:
        m = rec.result.metrics
        map_work = m.map_stats.mean * m.map_stats.n_tasks
        reduce_work = m.reduce_stats.mean * m.reduce_stats.n_tasks
        assert map_work > reduce_work, rec.row.label
