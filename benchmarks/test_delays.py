"""Benchmark: the Section IV.B delay narrative, quantified.

The paper attributes its inflated phase times to three mechanisms; this
bench measures each on the 20/20/5 scenario and prints the decomposition:

1. **Report-at-next-RPC** — outputs are uploaded immediately but tasks are
   only reported at the next scheduler RPC; the gap is bounded by the
   backoff cap (600 s).
2. **Backoff growth** — repeated no-work replies double client deferrals
   up to the cap.
3. **Map->reduce dead time** — after the last map report the server must
   validate, create reduce WUs, and feed them, while clients sit in
   backoff; the first reduce assignment therefore lags the last map
   report by (daemon pipeline + residual backoff).
"""

import statistics

import pytest

from repro.analysis import backoff_delays, job_metrics, report_lags
from repro.experiments import Scenario, run_scenario


@pytest.fixture(scope="module")
def result():
    return run_scenario(Scenario(name="delays", n_nodes=20, n_maps=20,
                                 n_reducers=5, seed=1))


def test_delay_decomposition(benchmark, result):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    m = result.metrics
    lags = [lag for _h, lag in report_lags(result.tracer, "delays")]
    delays = backoff_delays(result.tracer)
    print()
    print("Section IV.B delay decomposition (20 nodes / 20 maps / 5 reduces)")
    print(f"  report lag (ready -> reported): mean {statistics.fmean(lags):6.1f}s"
          f"  max {max(lags):6.1f}s over {len(lags)} results")
    print(f"  backoff deferrals issued:       {len(delays)} "
          f"(mean {statistics.fmean(delays):5.1f}s, max {max(delays):5.1f}s)")
    print(f"  map->reduce transition gap:     {m.transition_gap:6.1f}s")
    print(f"  map mean {m.map_stats.mean:6.1f}s  reduce mean "
          f"{m.reduce_stats.mean:6.1f}s  total {m.total:7.1f}s")


def test_report_lag_bounded_by_backoff_cap(result):
    lags = [lag for _h, lag in report_lags(result.tracer, "delays")]
    assert max(lags) <= 600.0 * 1.5 + 60.0
    assert statistics.fmean(lags) > 1.0  # the effect exists


def test_backoff_delays_grow_to_cap_band(result):
    delays = backoff_delays(result.tracer)
    assert min(delays) >= 60.0 * 0.5          # min * (1 - jitter)
    assert max(delays) <= 600.0 * 1.5 + 1e-9  # cap * (1 + jitter)
    assert max(delays) > 100.0                # growth actually happened


def test_transition_gap_positive_and_bounded(result):
    m = result.metrics
    assert 0 <= m.transition_gap < 600.0 * 1.5 + 35.0


def test_uploads_not_delayed_by_backoff(result):
    """The delay is in *reporting*, not in moving the data."""
    tracer = result.tracer
    ready = {r["result"]: r.time for r in tracer.select("task.ready")}
    uploads = {r["result"]: r.time
               for r in tracer.select("server.upload_received")}
    gaps = [abs(uploads[rid] - ready[rid]) for rid in uploads if rid in ready]
    assert gaps and statistics.fmean(gaps) < 5.0
