"""Observability overhead: tracing + metrics + spans vs. a bare run.

The obs layer must be cheap enough to leave on by default. We time the
same seeded workload twice — once with the tracer dropping every record
and no observability attached, once with the full stack (tracer, span
builder, probes, sampler) — and assert the overhead stays under 15%.

Also emits ``BENCH_obs.json`` (counts, wall times, overhead ratio, and a
metrics snapshot) to start the perf trajectory for the obs subsystem.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.core import BoincMRConfig, CloudSpec, MapReduceJobSpec, VolunteerCloud
from repro.sim import Tracer

NODES, MAPS, REDUCERS, INPUT = 20, 20, 5, 1e9
REPEATS = 3
MAX_OVERHEAD = 0.15
BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _build(observed: bool) -> VolunteerCloud:
    tracer = None if observed else Tracer(keep=lambda kind: False)
    cloud = VolunteerCloud.from_spec(
        CloudSpec(seed=11, mr_config=BoincMRConfig()), tracer=tracer)
    cloud.add_volunteers(NODES, mr=True)
    if observed:
        cloud.attach_observability(spans=True, probes=True)
    return cloud

def _run(observed: bool) -> tuple[float, VolunteerCloud]:
    """Best-of-N wall time for one full workload; returns the last cloud."""
    best = float("inf")
    cloud = None
    for _ in range(REPEATS):
        cloud = _build(observed)
        t0 = time.perf_counter()
        cloud.run_job(MapReduceJobSpec("wc", n_maps=MAPS, n_reducers=REDUCERS,
                                       input_size=INPUT))
        best = min(best, time.perf_counter() - t0)
    if observed:
        cloud.finish_observability()
    return best, cloud


def test_obs_overhead_under_budget(run_once, benchmark):
    bare_s, _bare = run_once(benchmark, _run, False)
    obs_s, cloud = _run(True)
    overhead = obs_s / bare_s - 1.0

    builder = cloud.span_builder
    payload = {
        "scenario": {"nodes": NODES, "maps": MAPS, "reducers": REDUCERS,
                     "input_bytes": INPUT, "seed": 11, "repeats": REPEATS},
        "bare_wall_s": bare_s,
        "observed_wall_s": obs_s,
        "overhead": overhead,
        "trace_records": len(cloud.tracer),
        "spans": len(builder.spans),
        "leaked_spans": len(builder.leaked),
        "metrics": cloud.metrics.snapshot(),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")
    print(f"\nbare {bare_s * 1e3:.1f} ms  observed {obs_s * 1e3:.1f} ms  "
          f"overhead {overhead * 100:+.1f}%  "
          f"({payload['trace_records']} records, {payload['spans']} spans)")

    assert len(builder.spans) > 0 and len(cloud.tracer) > 0
    assert overhead < MAX_OVERHEAD, (
        f"observability overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% budget")
