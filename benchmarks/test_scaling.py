"""Benchmark: scaling and redundancy sweeps (figure-style extensions).

Two curves Table I gestures at but never isolates:

1. **Node scaling** — same 1 GB job, growing cluster.  Speedup saturates
   and then *reverses*: with ~2 tasks per node the replication floor,
   scheduling round-trips, and backoff windows dominate, so more
   volunteers make the job slower.  (This is the quantitative face of the
   paper's "requires many machines to achieve meaningful results"
   caveat.)
2. **Replication factor** — redundancy overhead vs byzantine resilience:
   no replication accepts corrupt results; the paper's 2/2 never does,
   at ~2.3x executed work.
"""

import pytest

from repro.analysis import render_series
from repro.experiments import node_scaling, replication_sweep, speedup


@pytest.fixture(scope="module")
def node_points():
    return node_scaling((5, 10, 20, 40), seed=1)


@pytest.fixture(scope="module")
def replication_points():
    return replication_sweep(byzantine_rate=0.2, seed=5)


def test_node_scaling_series(benchmark, node_points):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(render_series([(p.x, p.total) for p in node_points],
                        value_label="s total",
                        title="Node scaling (1 GB word count, BOINC-MR)"))
    print("speedup vs 5 nodes:",
          {x: round(s, 2) for x, s in speedup(node_points)})


def test_speedup_then_saturation(node_points):
    totals = {p.x: p.total for p in node_points}
    assert totals[10] < totals[5]          # more nodes help at first...
    assert totals[40] > 0.7 * totals[20]   # ...then saturate (or reverse)


def test_no_superlinear_speedup(node_points):
    for x, s in speedup(node_points):
        assert s <= x / node_points[0].x + 0.25


def test_replication_series(benchmark, replication_points):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Replication factor vs overhead and byzantine resilience "
          "(20% byzantine hosts)")
    for o in replication_points:
        print(f"  {o.replication}/{o.quorum}: total {o.total:7.0f}s  "
              f"overhead {o.overhead:.2f}x  "
              f"corrupt accepted {o.corrupt_accepted}/{o.workunits}")


def test_no_replication_is_cheap_but_unsafe(replication_points):
    r1 = next(o for o in replication_points if o.quorum == 1)
    assert r1.overhead < 1.5
    assert r1.corrupt_accepted > 0


def test_paper_replication_is_safe(replication_points):
    r2 = next(o for o in replication_points
              if (o.replication, o.quorum) == (2, 2))
    assert r2.corrupt_accepted == 0
    assert r2.overhead >= 2.0


def test_overhead_monotone_in_replication(replication_points):
    overheads = [o.overhead for o in
                 sorted(replication_points, key=lambda o: o.replication)]
    assert overheads == sorted(overheads)
