"""Benchmark: the server-congestion price of priority reporting.

Section IV.C proposes immediate reporting "even if it meant increasing
server congestion"; this bench prices it across cluster sizes.  The
finding: total RPC *volume* barely changes (reports piggyback on RPCs the
pull loop makes anyway), but the same RPCs compress into a shorter
makespan, so the scheduler's *arrival rate* rises — congestion appears as
rate, not volume.
"""

import pytest

from repro.experiments import congestion_ratio, run_load_sweep

NODE_COUNTS = (10, 20, 40)


@pytest.fixture(scope="module")
def points():
    return run_load_sweep(NODE_COUNTS, seed=1)


def test_load_table(benchmark, points):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Scheduler load: batched (stock BOINC) vs immediate reporting")
    for p in points:
        print(f"  {p.label:16s} total {p.total:7.0f}s  rpcs {p.rpc_count:5d}"
              f"  mean rate {p.rpc_rate_per_min:6.1f}/min"
              f"  peak {p.peak_rpcs_per_min:4d}/min")


def test_rpc_volume_roughly_unchanged(points):
    """Reports piggyback on pull-loop RPCs — volume is not the cost."""
    for n in NODE_COUNTS:
        assert 0.8 < congestion_ratio(points, n) < 1.3


def test_rpc_rate_rises_with_immediate_reporting_at_scale(points):
    big = [p for p in points if p.n_nodes == max(NODE_COUNTS)]
    batched = next(p for p in big if not p.report_immediately)
    immediate = next(p for p in big if p.report_immediately)
    assert immediate.rpc_rate_per_min >= batched.rpc_rate_per_min


def test_immediate_reporting_never_slower(points):
    for n in NODE_COUNTS:
        batched = next(p for p in points
                       if p.n_nodes == n and not p.report_immediately)
        immediate = next(p for p in points
                         if p.n_nodes == n and p.report_immediately)
        assert immediate.total <= batched.total * 1.02


def test_rpc_load_scales_with_cluster(points):
    batched = {p.n_nodes: p.rpc_count for p in points
               if not p.report_immediately}
    assert batched[40] > batched[20] > batched[10]
