"""Benchmarks for the Section III.D / future-work extensions.

Three design alternatives the paper sketches but never measured:

1. **Supernode relay vs server relay** — when NATed peers need a relay,
   routing through elected volunteer supernodes keeps the intermediate
   data off the project server entirely.
2. **Adaptive replication** — reputation + spot-checking replaces the
   fixed 2x redundancy, cutting executed results once trust is built.
3. **TCP-Nice uploads** — background map-output uploads stop competing
   with the inter-client transfers reducers are blocked on.
"""

import pytest

from repro.boinc import ClientConfig, ServerConfig
from repro.core import BoincMRConfig, CloudSpec, MapReduceJobSpec, VolunteerCloud
from repro.net import LinkSpec, NatBox, NatType

SYM = NatBox(nat_type=NatType.SYMMETRIC)


# ---------------------------------------------------------------------------
# 1. Supernode overlay vs server relay
# ---------------------------------------------------------------------------

def _natted_cloud(seed=2):
    cloud = VolunteerCloud.from_spec(CloudSpec(seed=seed))
    # Two public, well-provisioned volunteers (supernode candidates) and a
    # NATed majority.
    cloud.add_volunteers(3, mr=True, link_spec=LinkSpec(200e6, 200e6, 0.001))
    cloud.add_volunteers(15, mr=True, nat=SYM)
    return cloud


@pytest.fixture(scope="module")
def relay_comparison():
    spec = MapReduceJobSpec("relayed", n_maps=15, n_reducers=4,
                            input_size=600e6)
    via_server = _natted_cloud()
    job_s = via_server.run_job(spec, timeout=48 * 3600)

    via_overlay = _natted_cloud()
    via_overlay.enable_supernode_overlay(n_supernodes=3, fanout=2)
    job_o = via_overlay.run_job(spec, timeout=48 * 3600)
    return (via_server, job_s), (via_overlay, job_o)


def _server_link_gb(cloud):
    host = cloud.server_host
    return (host.uplink.bytes_carried + host.downlink.bytes_carried) / 1e9


def test_supernode_summary(benchmark, relay_comparison):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    (srv, job_s), (ovl, job_o) = relay_comparison
    print()
    print("Relay for NATed peers: project server vs supernode overlay")
    print(f"  server relay:    makespan {job_s.makespan():7.0f}s  "
          f"server link carried {_server_link_gb(srv):.2f} GB")
    print(f"  supernode relay: makespan {job_o.makespan():7.0f}s  "
          f"server link carried {_server_link_gb(ovl):.2f} GB  "
          f"supernodes {[h.name for h in ovl.overlay.supernodes]}")


def test_supernodes_offload_server(relay_comparison):
    (srv, _), (ovl, _) = relay_comparison
    assert _server_link_gb(ovl) < 0.8 * _server_link_gb(srv)
    assert ovl.connectivity.method_counts().get("relay", 0) > 0


def test_both_relay_modes_complete(relay_comparison):
    (_, job_s), (_, job_o) = relay_comparison
    assert job_s.finished and job_o.finished


# ---------------------------------------------------------------------------
# 2. Adaptive replication
# ---------------------------------------------------------------------------

def _run_adaptive(adaptive: bool, seed=5):
    cloud = VolunteerCloud.from_spec(CloudSpec(
        seed=seed, server_config=ServerConfig(
            adaptive_replication=adaptive, adaptive_trust_threshold=2,
            adaptive_spot_check_rate=0.1)))
    cloud.add_volunteers(12, mr=True)
    cloud.run_job(MapReduceJobSpec("warm", n_maps=12, n_reducers=3,
                                   input_size=120e6), timeout=48 * 3600)
    job = cloud.run_job(MapReduceJobSpec("main", n_maps=12, n_reducers=3,
                                         input_size=120e6), timeout=48 * 3600)
    executed = len([r for r in cloud.server.db.results.values()
                    if r.reported_at is not None])
    return cloud, job, executed


@pytest.fixture(scope="module")
def adaptive_comparison():
    return _run_adaptive(False), _run_adaptive(True)


def test_adaptive_summary(benchmark, adaptive_comparison):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    (c_f, job_f, exec_f), (c_a, job_a, exec_a) = adaptive_comparison
    accepts = len(c_a.tracer.select("validator.adaptive_accept"))
    escalations = len(c_a.tracer.select("validator.adaptive_escalate"))
    print()
    print("Fixed 2x replication vs adaptive replication (2 jobs, 12 hosts)")
    print(f"  fixed:    main makespan {job_f.makespan():6.0f}s, "
          f"{exec_f} results executed")
    print(f"  adaptive: main makespan {job_a.makespan():6.0f}s, "
          f"{exec_a} results executed "
          f"({accepts} single-accepts, {escalations} escalations)")


def test_adaptive_cuts_executed_work(adaptive_comparison):
    (_c_f, _job_f, exec_f), (_c_a, _job_a, exec_a) = adaptive_comparison
    assert exec_a < exec_f


def test_adaptive_does_not_hurt_makespan(adaptive_comparison):
    (_c_f, job_f, _), (_c_a, job_a, _) = adaptive_comparison
    assert job_a.makespan() <= job_f.makespan() * 1.15


# ---------------------------------------------------------------------------
# 3. TCP-Nice background uploads
# ---------------------------------------------------------------------------

def _run_nice(nice: bool, seed=3):
    cloud = VolunteerCloud.from_spec(CloudSpec(
        seed=seed,
        # Map outputs are uploaded for fallback AND served to peers — the
        # exact contention Nice is for.
        mr_config=BoincMRConfig(upload_map_outputs=True),
        client_config=ClientConfig(nice_uploads=nice)))
    # Thin uplinks make the contention visible.
    cloud.add_volunteers(12, mr=True,
                         link_spec=LinkSpec(30e6, 6e6, 0.010))
    job = cloud.run_job(MapReduceJobSpec(
        "nice", n_maps=12, n_reducers=3, input_size=240e6),
        timeout=48 * 3600)
    return cloud, job


@pytest.fixture(scope="module")
def nice_comparison():
    return _run_nice(False), _run_nice(True)


def test_nice_summary(benchmark, nice_comparison):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    (c0, job0), (c1, job1) = nice_comparison
    print()
    print("Map-output uploads: greedy TCP vs TCP-Nice background flows")
    print(f"  greedy: total {job0.makespan():7.0f}s")
    print(f"  nice:   total {job1.makespan():7.0f}s")


def test_nice_uploads_help_or_tie_on_thin_uplinks(nice_comparison):
    (_c0, job0), (_c1, job1) = nice_comparison
    assert job1.makespan() <= job0.makespan() * 1.05


def test_both_nice_modes_complete(nice_comparison):
    (_c0, job0), (_c1, job1) = nice_comparison
    assert job0.finished and job1.finished
