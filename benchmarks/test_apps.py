"""Benchmark: which applications suit BOINC-MR? (Section IV.B future work)

"In future iterations, we expect to experiment with a wider range of
applications, to evaluate which scenarios are the most suited."  This
bench runs three application cost profiles — word count, distributed
grep, inverted index — through both vanilla BOINC and BOINC-MR and prints
where inter-client transfers pay off: the benefit scales with the volume
of intermediate data that would otherwise round-trip through the server.
"""

import pytest

from repro.core import GREP, INVERTED_INDEX, WORD_COUNT, BoincMRConfig
from repro.experiments import Scenario, run_scenario

APPS = [
    ("wordcount", WORD_COUNT),
    ("grep", GREP),
    ("invindex", INVERTED_INDEX),
]


def run_pair(app_name, cost, seed=1):
    common = dict(n_nodes=20, n_maps=20, n_reducers=5, seed=seed, cost=cost,
                  app_name=app_name)
    vanilla = run_scenario(Scenario(
        name=f"{app_name}_vanilla", mr_clients=False,
        mr_config=BoincMRConfig(upload_map_outputs=True,
                                reduce_from_peers=False),
        **common))
    mr = run_scenario(Scenario(
        name=f"{app_name}_mr", mr_clients=True, **common))
    return vanilla, mr


@pytest.fixture(scope="module")
def outcomes():
    return {name: run_pair(name, cost) for name, cost in APPS}


def test_app_suitability_table(benchmark, outcomes):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Application suitability: vanilla BOINC vs BOINC-MR (reduce phase)")
    for name, (vanilla, mr) in outcomes.items():
        v, m = vanilla.metrics, mr.metrics
        cost = dict(APPS)[name]
        print(f"  {name:10s} intermediate_ratio {cost.intermediate_ratio:4.2f}"
              f"  reduce {v.reduce_stats.mean:7.1f}s -> {m.reduce_stats.mean:7.1f}s"
              f"  total {v.total:7.1f}s -> {m.total:7.1f}s")


def test_all_complete(outcomes):
    for vanilla, mr in outcomes.values():
        assert vanilla.job.finished and mr.job.finished


def test_heavy_intermediate_apps_gain_most_on_reduce(outcomes):
    """BOINC-MR's reduce-phase advantage grows with intermediate volume."""
    gains = {}
    for name, (vanilla, mr) in outcomes.items():
        gains[name] = (vanilla.metrics.reduce_stats.mean
                       - mr.metrics.reduce_stats.mean)
    assert gains["invindex"] > gains["grep"]
    assert gains["wordcount"] > gains["grep"]


def test_grep_roughly_indifferent(outcomes):
    """Near-zero intermediate data -> inter-client transfers barely matter."""
    vanilla, mr = outcomes["grep"]
    diff = abs(vanilla.metrics.reduce_stats.mean
               - mr.metrics.reduce_stats.mean)
    assert diff < 0.5 * vanilla.metrics.reduce_stats.mean
