"""Benchmark: the Section IV.C mitigations ("Minimizing Impact of Slower
Nodes"), each run against its baseline.

The paper proposes them qualitatively; this bench quantifies each:

1. concurrent jobs keep the scheduler stocked -> report lags collapse;
2. priority (immediate) reporting of finished results -> lags collapse
   and the total shrinks;
3. intermediate-data downloads (early reduce creation) -> the map->reduce
   transition overlaps and the total shrinks.
"""

import pytest

from repro.experiments import (
    ablate_concurrent_jobs,
    ablate_intermediate_downloads,
    ablate_report_immediately,
)


@pytest.fixture(scope="module")
def outcomes():
    return {
        "report_immediately": ablate_report_immediately(seed=1),
        "intermediate_downloads": ablate_intermediate_downloads(seed=1),
        "concurrent_jobs": ablate_concurrent_jobs(seed=1),
    }


def test_ablation_table(benchmark, outcomes):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Section IV.C mitigations (20 nodes / 20 maps / 5 reduces)")
    for name, o in outcomes.items():
        print(f"  {name:24s} total {o.baseline_total:7.1f}s -> "
              f"{o.mitigated_total:7.1f}s ({o.improvement * 100:+5.1f}%)")
        for key in o.baseline_detail:
            print(f"    {key:22s} {o.baseline_detail[key]:9.2f} -> "
                  f"{o.mitigated_detail[key]:9.2f}")


def test_immediate_reporting_removes_lag_and_helps(outcomes):
    o = outcomes["report_immediately"]
    assert o.mitigated_detail["mean_report_lag"] < 2.0
    assert o.baseline_detail["mean_report_lag"] > 10.0
    assert o.mitigated_total < o.baseline_total


def test_overlap_shrinks_total_and_gap(outcomes):
    o = outcomes["intermediate_downloads"]
    assert o.mitigated_total < o.baseline_total
    assert o.mitigated_detail["transition_gap"] < \
        o.baseline_detail["transition_gap"]


def test_concurrent_jobs_eliminate_nowork_lag(outcomes):
    o = outcomes["concurrent_jobs"]
    # With work always available the report lag collapses, even though a
    # shared cluster makes any single job's makespan longer.
    assert o.mitigated_detail["mean_report_lag"] < \
        o.baseline_detail["mean_report_lag"] / 5
