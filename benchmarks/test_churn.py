"""Benchmark: BOINC-MR under volunteer churn (extension study).

The paper evaluated on a dedicated cluster ("we did not consider node
failure in our tests") but designed for volatility; this bench measures
what its safety nets deliver when hosts actually come and go."""

import pytest

from repro.experiments import run_churn, run_scenario
from repro.experiments.scenario import Scenario


@pytest.fixture(scope="module")
def outcomes():
    stable = run_scenario(Scenario(name="churn", n_nodes=20, n_maps=20,
                                   n_reducers=5, mr_clients=True, seed=3))
    churny = run_churn(seed=3, mean_on_s=1800.0, mean_off_s=600.0,
                       departure_prob=0.05)
    return stable, churny


def test_churn_summary(benchmark, outcomes):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    stable, churny = outcomes
    print()
    print("Churn study (20 BOINC-MR nodes, exp ON 30min / OFF 10min, 5% departures)")
    print(f"  stable  total {stable.metrics.total:8.1f}s")
    print(f"  churn   total {churny.total:8.1f}s  "
          f"(x{churny.total / stable.metrics.total:.2f})")
    print(f"  transitions {churny.transitions}  departed {churny.departed}")
    print(f"  peer fetches {churny.peer_fetches}  "
          f"server fallbacks {churny.server_fallbacks}  "
          f"replacement results {churny.replacement_results}")


def test_job_survives_churn(outcomes):
    _stable, churny = outcomes
    assert churny.result.job.finished
    assert churny.transitions > 10


def test_churn_costs_makespan(outcomes):
    stable, churny = outcomes
    assert churny.total > stable.metrics.total


def test_safety_nets_used(outcomes):
    """The fallback and replication machinery must actually fire —
    otherwise the run does not exercise the paper's design point."""
    _stable, churny = outcomes
    assert churny.replacement_results > 0
    assert churny.server_fallbacks > 0 or churny.peer_fetches > 0
