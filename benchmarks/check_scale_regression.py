#!/usr/bin/env python3
"""Gate: fail when scale-benchmark throughput regresses vs the baseline.

Compares a fresh ``BENCH_scale.json`` (from ``benchmarks/test_scale.py``)
against the checked-in ``benchmarks/BENCH_scale_baseline.json`` and exits
non-zero when, at any common size, the incremental allocator's events/sec
drops more than ``--tolerance`` (default 20%) below baseline.

Absolute events/sec varies across machines, so the gate also checks the
machine-independent signal — the incremental/full speedup ratio — with
the same tolerance.  Regenerate the baseline on the reference runner with
``python benchmarks/test_scale.py && cp BENCH_scale.json
benchmarks/BENCH_scale_baseline.json`` when an intentional change shifts
the numbers.

Usage: python benchmarks/check_scale_regression.py [result] [baseline]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__),
                                "BENCH_scale_baseline.json")


def _index(report: dict) -> dict[int, dict]:
    return {entry["n_nodes"]: entry for entry in report.get("sizes", [])}


def check(result: dict, baseline: dict, tolerance: float) -> list[str]:
    """Return a list of human-readable regression findings (empty = pass)."""
    failures = []
    fresh, base = _index(result), _index(baseline)
    common = sorted(set(fresh) & set(base))
    if not common:
        return ["no common sizes between result and baseline"]
    floor = 1.0 - tolerance
    for n in common:
        got = fresh[n]["incremental"]["events_per_s"]
        want = base[n]["incremental"]["events_per_s"]
        if got < floor * want:
            failures.append(
                f"n={n}: incremental throughput {got:.0f} events/s is "
                f"{100 * (1 - got / want):.0f}% below baseline {want:.0f}")
        got_ratio = fresh[n]["speedup_events_per_s"]
        want_ratio = base[n]["speedup_events_per_s"]
        if got_ratio < floor * want_ratio:
            failures.append(
                f"n={n}: incremental/full speedup {got_ratio:.2f}x is "
                f"{100 * (1 - got_ratio / want_ratio):.0f}% below "
                f"baseline {want_ratio:.2f}x")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("result", nargs="?", default="BENCH_scale.json")
    parser.add_argument("baseline", nargs="?", default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop (default 0.20)")
    args = parser.parse_args(argv)
    with open(args.result, encoding="utf-8") as fh:
        result = json.load(fh)
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures = check(result, baseline, args.tolerance)
    if failures:
        print("scale benchmark regression:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print(f"scale benchmark within {args.tolerance:.0%} of baseline "
          f"at sizes {sorted(set(_index(result)) & set(_index(baseline)))}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
