#!/usr/bin/env python3
"""Gate: fail when benchmark throughput regresses vs a checked-in baseline.

A shared helper for the two simulator-throughput benchmarks:

- ``--kind scale`` (default) compares ``BENCH_scale.json`` (from
  ``benchmarks/test_scale.py``) against
  ``benchmarks/BENCH_scale_baseline.json``: per common size, the
  incremental allocator's events/sec must stay within ``--tolerance`` of
  baseline, and so must the machine-independent incremental/full speedup
  ratio.
- ``--kind parallel`` compares ``BENCH_parallel.json`` (from
  ``benchmarks/test_parallel.py``) against
  ``benchmarks/BENCH_parallel_baseline.json``: every size must report
  sequential equivalence (exact event-count/makespan/queue-depth match at
  every LP count), sequential and best-parallel events/sec must stay
  within tolerance, and — on runners with 4+ CPUs only — the best 4+-LP
  configuration must reach 2x the sequential throughput at 2,000+
  volunteers.  On smaller runners that criterion is skipped with a
  logged reason (a GIL-bound single core cannot express cross-LP
  parallelism).

- ``--kind gateway`` compares ``BENCH_gateway.json`` (from
  ``benchmarks/test_gateway.py`` or ``repro loadgen``) against
  ``benchmarks/BENCH_gateway_baseline.json``: the live scheduler-RPC p99
  must stay under the absolute ``budget.p99_ms``, the replay must cover
  ``min_clients`` clients, and the correctness gates must be clean (zero
  lost/duplicated results, benchmark job done, reclaimed payload
  byte-equivalent to the simulated LocalRunner oracle).

Absolute events/sec varies across machines; regenerate a baseline on the
reference runner with e.g. ``python benchmarks/test_parallel.py && cp
BENCH_parallel.json benchmarks/BENCH_parallel_baseline.json`` when an
intentional change shifts the numbers.

Usage: python benchmarks/check_scale_regression.py [--kind scale|parallel]
       [result] [baseline]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(__file__)

#: Per-kind defaults: (result file, checked-in baseline file).
DEFAULTS = {
    "scale": ("BENCH_scale.json",
              os.path.join(_HERE, "BENCH_scale_baseline.json")),
    "parallel": ("BENCH_parallel.json",
                 os.path.join(_HERE, "BENCH_parallel_baseline.json")),
    "gateway": ("BENCH_gateway.json",
                os.path.join(_HERE, "BENCH_gateway_baseline.json")),
}


def _index(report: dict) -> dict[int, dict]:
    return {entry["n_nodes"]: entry for entry in report.get("sizes", [])}


def _below(got: float, want: float, tolerance: float) -> bool:
    return got < (1.0 - tolerance) * want


def check(result: dict, baseline: dict, tolerance: float) -> list[str]:
    """Scale-kind findings: allocator throughput + speedup ratio (empty = pass)."""
    failures = []
    fresh, base = _index(result), _index(baseline)
    common = sorted(set(fresh) & set(base))
    if not common:
        return ["no common sizes between result and baseline"]
    for n in common:
        got = fresh[n]["incremental"]["events_per_s"]
        want = base[n]["incremental"]["events_per_s"]
        if _below(got, want, tolerance):
            failures.append(
                f"n={n}: incremental throughput {got:.0f} events/s is "
                f"{100 * (1 - got / want):.0f}% below baseline {want:.0f}")
        got_ratio = fresh[n]["speedup_events_per_s"]
        want_ratio = base[n]["speedup_events_per_s"]
        if _below(got_ratio, want_ratio, tolerance):
            failures.append(
                f"n={n}: incremental/full speedup {got_ratio:.2f}x is "
                f"{100 * (1 - got_ratio / want_ratio):.0f}% below "
                f"baseline {want_ratio:.2f}x")
    return failures


def check_parallel(result: dict, baseline: dict,
                   tolerance: float) -> list[str]:
    """Parallel-kind findings: equivalence, throughput, multi-core speedup."""
    failures = []
    fresh, base = _index(result), _index(baseline)
    for n in sorted(fresh):
        if not fresh[n].get("equivalent", False):
            diverged = [w for w, v in fresh[n].get("lp", {}).items()
                        if not v.get("matches_sequential")]
            failures.append(
                f"n={n}: parallel engine diverged from sequential at "
                f"LP count(s) {diverged or '?'} — determinism bug")
    common = sorted(set(fresh) & set(base))
    if not common:
        failures.append("no common sizes between result and baseline")
        return failures
    for n in common:
        for label, pick in (("sequential",
                             lambda e: e["sequential"]["events_per_s"]),
                            ("best-parallel",
                             lambda e: max(v["events_per_s"]
                                           for v in e["lp"].values()))):
            got, want = pick(fresh[n]), pick(base[n])
            if _below(got, want, tolerance):
                failures.append(
                    f"n={n}: {label} throughput {got:.0f} events/s is "
                    f"{100 * (1 - got / want):.0f}% below baseline "
                    f"{want:.0f}")
    ncpu = result.get("cpu_count") or 1
    if ncpu >= 4:
        for n in sorted(fresh):
            if n < 2000:
                continue
            seq = fresh[n]["sequential"]["events_per_s"]
            four_plus = max(v["events_per_s"]
                            for w, v in fresh[n]["lp"].items()
                            if int(w) >= 4)
            if four_plus < 2.0 * seq:
                failures.append(
                    f"n={n}: best 4+-LP throughput {four_plus:.0f} events/s "
                    f"is below 2x the sequential {seq:.0f} on a "
                    f"{ncpu}-CPU host")
    else:
        print(f"note: skipping the >=2x multi-core criterion — runner has "
              f"{ncpu} CPU(s), cross-LP execution is GIL-serialized here")
    return failures


def check_gateway(result: dict, baseline: dict,
                  tolerance: float) -> list[str]:
    """Gateway-kind findings: p99 budget + the zero-loss/oracle gates.

    Unlike the throughput kinds, the latency gate is an absolute budget
    (``baseline["budget"]["p99_ms"]``) rather than a relative tolerance:
    a live server that answers its scheduler RPC slower than the budget
    is a regression regardless of what the last run measured.
    """
    failures = []
    budget = baseline.get("budget", {}).get("p99_ms")
    if budget is None:
        return ["baseline has no budget.p99_ms entry"]
    p99 = result.get("latency_ms", {}).get("p99")
    if p99 is None:
        failures.append("result has no latency_ms.p99 measurement")
    elif p99 > budget:
        failures.append(f"scheduler-RPC p99 {p99:.2f}ms exceeds the "
                        f"{budget:.2f}ms budget")
    min_clients = baseline.get("min_clients", 0)
    if result.get("n_clients", 0) < min_clients:
        failures.append(f"replayed {result.get('n_clients', 0)} clients; "
                        f"the gate requires >= {min_clients}")
    if result.get("job_state") != "done":
        failures.append(f"benchmark job ended {result.get('job_state')!r}, "
                        "not 'done'")
    for gate in ("errors", "lost_results", "duplicated_results"):
        if result.get(gate, 1) != 0:
            failures.append(f"{gate} = {result.get(gate)} (must be 0)")
    if not result.get("equivalent", False):
        failures.append("reclaimed payload is not byte-equivalent to the "
                        "simulated LocalRunner oracle")
    return failures


#: Kind -> checker function.
CHECKERS = {"scale": check, "parallel": check_parallel,
            "gateway": check_gateway}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kind", choices=sorted(CHECKERS),
                        default="scale",
                        help="which benchmark report to validate")
    parser.add_argument("result", nargs="?", default=None)
    parser.add_argument("baseline", nargs="?", default=None)
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop (default 0.20)")
    args = parser.parse_args(argv)
    default_result, default_baseline = DEFAULTS[args.kind]
    with open(args.result or default_result, encoding="utf-8") as fh:
        result = json.load(fh)
    with open(args.baseline or default_baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    failures = CHECKERS[args.kind](result, baseline, args.tolerance)
    if failures:
        print(f"{args.kind} benchmark regression:")
        for line in failures:
            print(f"  - {line}")
        return 1
    if args.kind == "gateway":
        print(f"gateway load gates clean: p99 "
              f"{result['latency_ms']['p99']:.2f}ms within the "
              f"{baseline['budget']['p99_ms']:.0f}ms budget, "
              f"{result['n_clients']} clients, zero lost/duplicated "
              f"results, oracle-equivalent output")
    else:
        print(f"{args.kind} benchmark within {args.tolerance:.0%} of "
              f"baseline at sizes "
              f"{sorted(set(_index(result)) & set(_index(baseline)))}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
