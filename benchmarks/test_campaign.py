"""Benchmark: campaign fan-out speedup at 1/2/4/8 workers.

Runs the same 32-cell sweep through :class:`repro.campaign.CampaignRunner`
at increasing pool widths and emits ``BENCH_campaign.json`` with the
wall-clock and speedup-vs-sequential of each width, for two workloads:

- ``synthetic`` — 32 wall-clock-bound sleep cells.  These measure the
  runner itself (spawn, scheduling, store, reap overheads) independent
  of host CPU count, so the near-linear fan-out claim is checkable even
  on a single-core CI runner.
- ``simulation`` — 32 real small-scenario cells (seed x shape grid).
  These are CPU-bound, so their speedup is additionally capped by the
  machine's core count; the emitted report records ``cpus`` so the
  numbers are interpretable.
- ``coordinator`` — the same synthetic sweep through the distributed
  control plane (:class:`repro.campaign.CampaignCoordinator` + spawned
  workers over TCP) at the same widths, so the lease/heartbeat/socket
  overhead versus the in-process pool is a number in the report rather
  than folklore.

Also asserts the campaign determinism contract end to end: the pooled
run's per-cell payloads are byte-identical to an in-process sequential
run of the same cells, and a ``--resume`` pass re-runs zero cells.

Run directly (``python benchmarks/test_campaign.py``) or under pytest.
Environment knobs:

- ``CAMPAIGN_WORKERS``  comma-separated pool widths (default ``1,2,4,8``)
- ``CAMPAIGN_OUT``      output path (default ``BENCH_campaign.json``)
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

from repro.analysis import render_campaign_table, aggregate_records
from repro.campaign import (
    CampaignCell,
    CampaignCoordinator,
    CampaignGrid,
    CampaignRunner,
    ResultStore,
    canonical_json,
)

#: Pool widths under comparison; 1 is the sequential baseline.
DEFAULT_WORKERS = (1, 2, 4, 8)

#: Cells per sweep (the acceptance grid size).
N_CELLS = 32


def _widths() -> tuple[int, ...]:
    raw = os.environ.get("CAMPAIGN_WORKERS", "")
    if not raw:
        return DEFAULT_WORKERS
    return tuple(int(tok) for tok in raw.split(",") if tok.strip())


def synthetic_grid(duration_s: float = 0.2) -> CampaignGrid:
    """32 wall-clock-bound cells (distinct seeds, same sleep)."""
    return CampaignGrid(
        name="bench-synthetic",
        cells=tuple(CampaignCell(kind="sleep", seed=i,
                                 params={"duration_s": duration_s},
                                 group="sleep")
                    for i in range(N_CELLS)),
        description="fan-out overhead measurement")


def simulation_grid() -> CampaignGrid:
    """32 real cells: 8 seeds x 4 small cluster shapes."""
    shapes = ((6, 6, 2), (8, 8, 2), (10, 10, 3), (12, 12, 3))
    cells = [
        CampaignCell(
            kind="scenario", seed=seed,
            params={"n_nodes": n, "n_maps": m, "n_reducers": r,
                    "mr_clients": True, "input_size": 60e6},
            group=f"{n}n_{m}m_{r}r")
        for n, m, r in shapes
        for seed in range(1, 9)
    ]
    return CampaignGrid(name="bench-simulation", cells=tuple(cells),
                        description="real small-scenario sweep")


def time_sweep(grid: CampaignGrid, widths: tuple[int, ...]) -> dict:
    """Wall-clock the grid at each pool width; returns the report entry."""
    entry: dict = {"cells": len(grid), "widths": []}
    baseline = None
    for workers in widths:
        with tempfile.TemporaryDirectory() as tmp:
            runner = CampaignRunner(
                grid, ResultStore(os.path.join(tmp, "store.jsonl")),
                workers=workers)
            t0 = time.perf_counter()
            report = runner.run()
            wall = time.perf_counter() - t0
        assert report.ok and report.ran == len(grid), report.render()
        if baseline is None:
            baseline = wall
        entry["widths"].append({
            "workers": workers,
            "wall_s": round(wall, 3),
            "speedup": round(baseline / wall, 2),
        })
        print(f"  {grid.name:18s} workers={workers}  wall {wall:6.2f}s  "
              f"speedup {baseline / wall:5.2f}x", flush=True)
    return entry


def time_coordinator_sweep(grid: CampaignGrid,
                           widths: tuple[int, ...]) -> dict:
    """Wall-clock the grid through the TCP control plane at each width.

    The interesting number is the comparison against ``time_sweep`` on
    the same grid: identical work, but every cell travels through a
    lease grant, heartbeats, and a line-JSON result upload.
    """
    entry: dict = {"cells": len(grid), "widths": []}
    baseline = None
    for workers in widths:
        with tempfile.TemporaryDirectory() as tmp:
            coordinator = CampaignCoordinator(
                grid, ResultStore(os.path.join(tmp, "store.jsonl")),
                spawn=workers, heartbeat_s=0.25)
            t0 = time.perf_counter()
            report = coordinator.run()
            wall = time.perf_counter() - t0
        assert report.ok and report.ran == len(grid), report.render()
        if baseline is None:
            baseline = wall
        entry["widths"].append({
            "workers": workers,
            "wall_s": round(wall, 3),
            "speedup": round(baseline / wall, 2),
        })
        print(f"  {grid.name:18s} spawn={workers}  wall {wall:6.2f}s  "
              f"speedup {baseline / wall:5.2f}x  (coordinator)", flush=True)
    return entry


def check_determinism_and_resume(grid: CampaignGrid, workers: int = 8) -> None:
    """Pooled payloads byte-identical to sequential; resume re-runs zero."""
    with tempfile.TemporaryDirectory() as tmp:
        seq_store = ResultStore(os.path.join(tmp, "seq.jsonl"))
        par_store = ResultStore(os.path.join(tmp, "par.jsonl"))
        CampaignRunner(grid, seq_store, workers=0).run()
        CampaignRunner(grid, par_store, workers=workers).run()
        seq = {k: canonical_json(r.result)
               for k, r in seq_store.load().items()}
        par = {k: canonical_json(r.result)
               for k, r in par_store.load().items()}
        assert seq == par, "pooled payloads diverged from sequential run"
        resumed = CampaignRunner(grid, par_store, workers=workers,
                                 resume=True).run()
        assert resumed.ran == 0 and resumed.skipped == len(grid), \
            resumed.render()
        print(render_campaign_table(
            aggregate_records(par_store.load().values()),
            title=f"{grid.name} aggregate"))


def run_suite(widths: tuple[int, ...] | None = None) -> dict:
    """Run both sweeps and assemble the BENCH_campaign.json report."""
    widths = widths or _widths()
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    report = {
        "cpus": cpus,
        "widths": list(widths),
        "synthetic": time_sweep(synthetic_grid(), widths),
        "simulation": time_sweep(simulation_grid(), widths),
        "coordinator": time_coordinator_sweep(synthetic_grid(), widths),
    }
    best = max(w["workers"] for w in report["synthetic"]["widths"])

    def _at_best(section: str) -> dict:
        return next(w for w in report[section]["widths"]
                    if w["workers"] == best)

    pool_wall = _at_best("synthetic")["wall_s"]
    coord_wall = _at_best("coordinator")["wall_s"]
    report["headline"] = {
        "cells": N_CELLS,
        "workers": best,
        "synthetic_speedup": _at_best("synthetic")["speedup"],
        "simulation_speedup": _at_best("simulation")["speedup"],
        "coordinator_speedup": _at_best("coordinator")["speedup"],
        # control-plane tax at the widest point: distributed wall over
        # in-process-pool wall on identical wall-clock-bound work.
        "coordinator_overhead_x": round(coord_wall / pool_wall, 2)
        if pool_wall > 0 else None,
        "note": ("synthetic cells are wall-clock-bound (runner fan-out "
                 "capability); simulation cells are CPU-bound and capped "
                 "by the host's core count; coordinator runs the "
                 "synthetic sweep through the TCP lease control plane"),
    }
    return report


def write_report(report: dict, path: str | None = None) -> str:
    path = path or os.environ.get("CAMPAIGN_OUT", "BENCH_campaign.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def test_campaign_benchmark():
    """Full suite: speedup sweep, determinism/resume checks, JSON report."""
    report = run_suite()
    path = write_report(report)
    print(f"\nwrote {path}")
    # The runner's fan-out is near-linear: 32 wall-clock-bound cells at 8
    # workers must beat the sequential pass by >= 4x on any host.
    assert report["headline"]["synthetic_speedup"] >= 4.0, report["headline"]
    # The control plane must still fan out (leases are cheap relative to
    # 0.2s cells) — >= 3x at 8 workers leaves room for socket overhead.
    assert report["headline"]["coordinator_speedup"] >= 3.0, \
        report["headline"]
    # Real cells additionally need the cores to run on; only assert the
    # parallel speedup where the hardware can express it.
    if report["cpus"] >= 8:
        assert report["headline"]["simulation_speedup"] >= 4.0, \
            report["headline"]
    elif report["cpus"] >= 2:
        assert report["headline"]["simulation_speedup"] >= 1.3, \
            report["headline"]
    check_determinism_and_resume(simulation_grid())


def main() -> int:
    report = run_suite()
    path = write_report(report)
    check_determinism_and_resume(simulation_grid())
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
