"""Benchmark: regenerate Fig. 4 (map-phase backoff straggler timeline).

Prints the per-result ASCII Gantt chart for the 15-node / 15-map-WU
scenario and asserts the figure's story:

- one node's report is delayed far beyond everyone else's (by an interval
  on the order of the 600 s backoff cap);
- outputs were *uploaded* long before they were *reported* (the
  upload-vs-report split of Section IV.B);
- the reduce phase cannot start until that report lands.
"""

import pytest

from repro.experiments import run_fig4


@pytest.fixture(scope="module")
def fig4():
    return run_fig4(base_seed=1, min_straggler_lag=120.0)


def test_fig4_timeline(benchmark, fig4):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(fig4.render())
    lags = sorted((t.report_lag for t in fig4.timelines
                   if t.report_lag is not None), reverse=True)
    print(f"report lags (s): {[round(x) for x in lags[:8]]} ...")
    print(f"reduce phase started at t={fig4.reduce_start:.0f}s")


def test_straggler_dominates_field(fig4):
    others = [t.report_lag for t in fig4.timelines
              if t.report_lag is not None and t.host != fig4.straggler_host]
    assert fig4.straggler_lag > 2 * max(others)


def test_straggler_lag_is_backoff_scale(fig4):
    """Delay "sometimes larger than the backoff interval (600 seconds)"
    — ours must at least be a large fraction of the cap."""
    assert fig4.straggler_lag > 120.0
    assert fig4.straggler_lag < 2 * 600.0 + 60.0


def test_uploads_precede_reports(fig4):
    tracer = fig4.result.tracer
    uploads = {r["result"]: r.time
               for r in tracer.select("server.upload_received")}
    reports = {r["result"]: r.time
               for r in tracer.select("sched.report", job="fig4", kind="map")}
    checked = 0
    for rid, upload_t in uploads.items():
        if rid in reports:
            assert upload_t <= reports[rid] + 1e-9
            checked += 1
    assert checked >= 10


def test_reduce_waits_for_last_map_report(fig4):
    last_map_report = max(t.reported_at for t in fig4.timelines)
    assert fig4.reduce_start >= last_map_report
